//! TCP-loopback engine: the protocols over a real socket.
//!
//! [`RemoteEngine`] hosts the server coordinator in the current process and
//! the node population as *client connections*: construction binds a TCP
//! listener on `127.0.0.1`, spawns one client per shard (a contiguous node
//! range, the same `partition.rs` arithmetic the sharded and threaded
//! engines use), and waits for each client to connect and identify itself
//! with a `Join` frame. Every [`Network`] operation is then encoded with
//! `topk-wire`, framed, and moved through the sockets — the messages the
//! paper charges for genuinely cross a transport instead of a function call.
//!
//! ## Frame discipline
//!
//! Each `Network` call produces at most one [`Frame::Batch`] per involved
//! shard connection. Pure commands (observations, filter/group updates,
//! parameter broadcasts, end-of-run announcements) are *fire-and-forget*:
//! TCP's per-connection ordering guarantees a shard applies them before any
//! later frame, so the server never blocks on them. Operations that the
//! model answers upstream — probes and existence rounds — set the batch's
//! `wants_reply` flag and a per-connection sequence number, and the server
//! then reads exactly one matching [`Frame::Replies`] per queried shard,
//! *in shard order*. Shards are contiguous ascending id ranges and every
//! shard replies in ascending node id order, so the concatenation is the
//! global id order — the reply order of
//! [`DeterministicEngine`](crate::DeterministicEngine).
//!
//! ## Timeouts, polls and lossy transports
//!
//! [`RemoteEngine::with_fault_spec`] arms the reply path against loss: the
//! server sets a read timeout on every connection and, when the answer to a
//! `wants_reply` batch does not arrive within the deadline, sends a
//! [`Frame::Poll`] for the missing sequence number instead of hanging. The
//! client retains its last reply and answers the poll from that copy;
//! sequence numbers let the server discard a duplicate (original and poll
//! answer both arriving) instead of mistaking it for the next round's
//! answer. Each poll is charged one model downstream unicast under
//! [`ProtocolLabel::Recovery`], so recovery traffic is separable in the
//! `CommStats`; the replies themselves are charged once, on acceptance.
//! Mid-frame timeouts are safe because the reply path reads through a
//! [`FrameAccumulator`] (`topk-wire`), which parks partial frames across
//! timeouts instead of desynchronising the stream.
//!
//! The injected faults are *frame-granular*: the client drops whole reply
//! frames with the spec's upstream-drop probability, seeded per shard from
//! [`FaultSpec::seed`]. Message-granular faults (per-reply latency, crash /
//! rejoin, reordering) live in [`FaultyTransport`](crate::FaultyTransport),
//! which wraps in-process engines — the two layers exercise the same spec
//! vocabulary at the granularity each transport actually has. Poll *counts*
//! depend on real socket timing and are therefore not bit-reproducible;
//! correctness (replies, node state, non-recovery `CommStats`) is.
//!
//! ## Why the engine is bit-identical to the in-process baseline
//!
//! The clients drive the very same [`SimNode`] state machine on the very
//! same per-node `(master seed, node id)` RNG streams, and the wire format
//! round-trips every message losslessly (`topk-wire`'s proptests). A node's
//! RNG advances only inside its own coin flip, so neither the sharding nor
//! the transport can perturb any random stream; the id-ordered reply merge
//! restores the baseline's reply sequence; and the server charges the
//! [`CostMeter`] with exactly the baseline's accounting rules. Hence
//! replies, `CommStats` and all node state match the baseline bit for bit —
//! `tests/indexed_differential.rs` proves it over randomized schedules, and
//! `topk-core`'s monitors run unchanged over loopback.
//!
//! ## Server-side state mirror
//!
//! The free `peek_*` inspection API must not generate traffic (peeks are
//! not part of the model). The server therefore mirrors the deterministic
//! part of node state — values it delivered, filters/groups/params it sent —
//! in a [`NodeStateSoA`] and answers peeks locally. The mirror cannot drift:
//! filters derive through the same pure [`filter_for`] both sides evaluate,
//! and the differential battery asserts mirror state equals the baseline's
//! node state after every schedule.

use crate::network::Network;
use crate::node::SimNode;
use crate::partition::{shard_bounds, shard_of};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::rule::filter_for;
use topk_model::soa::NodeStateSoA;
use topk_wire::{read_frame, write_frame, Frame, FrameAccumulator, ServerOp, WireError};

/// How many polls the server sends for one missing reply before declaring
/// the peer dead. With the client always transmitting poll answers, one poll
/// per genuinely lost frame suffices; the headroom absorbs slow-scheduler
/// timing where several deadlines elapse while an answer is in flight.
const MAX_POLLS: u32 = 32;

/// Transport-level counters of a [`RemoteEngine`] (all connections summed).
///
/// These measure *wire* activity — frames and bytes — as opposed to the
/// `CommStats` *model* accounting (one unit per protocol message). The
/// throughput harness's `--remote` axis reports both and their ratio
/// (bytes per model message).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames the server wrote to shard connections.
    pub frames_sent: u64,
    /// Frames the server read from shard connections.
    pub frames_received: u64,
    /// Bytes written, including length prefixes and frame headers.
    pub bytes_sent: u64,
    /// Bytes read, including length prefixes and frame headers.
    pub bytes_received: u64,
}

impl TransportStats {
    /// Total frames moved in either direction.
    pub fn frames(&self) -> u64 {
        self.frames_sent + self.frames_received
    }

    /// Total bytes moved in either direction.
    pub fn bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// One framed server-side connection to a shard client.
struct Conn {
    writer: BufWriter<TcpStream>,
    /// Raw stream + resumable accumulator instead of a blocking buffered
    /// reader: a read timeout may strike mid-frame, and the accumulator
    /// parks the partial frame instead of desynchronising the stream.
    reader: TcpStream,
    acc: FrameAccumulator,
    /// Next sequence number for a `wants_reply` batch (0 is reserved for
    /// fire-and-forget batches).
    next_seq: u64,
    /// Cumulative [`Frame::Poll`]s sent on this connection.
    polls_sent: u64,
    stats: TransportStats,
}

impl Conn {
    fn send(&mut self, frame: &Frame) {
        let bytes = write_frame(&mut self.writer, frame)
            .unwrap_or_else(|e| panic!("remote transport: failed to send frame: {e}"));
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += bytes as u64;
    }

    /// Sends a `wants_reply` batch, stamping it with the next sequence
    /// number, and returns that number for the matching receive.
    fn send_query(&mut self, ops: Vec<ServerOp>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send(&Frame::Batch {
            wants_reply: true,
            seq,
            ops,
        });
        seq
    }

    /// Receives the reply for `seq`, degrading a missed deadline to a
    /// [`Frame::Poll`] (charged as a recovery downstream unicast on `meter`)
    /// and discarding duplicate answers to earlier polls.
    ///
    /// Without a configured read timeout this never observes a deadline and
    /// behaves exactly like the blocking v1 reader.
    fn recv_replies(&mut self, seq: u64, meter: &mut CostMeter) -> Vec<NodeMessage> {
        let mut polls_this_wait = 0u32;
        loop {
            match self.acc.read_frame(&mut self.reader) {
                Ok(Some((frame, bytes))) => {
                    self.stats.frames_received += 1;
                    self.stats.bytes_received += bytes as u64;
                    match frame {
                        Frame::Replies { seq: got, replies } if got == seq => return replies,
                        Frame::Replies { seq: got, .. } if got < seq => {
                            // A duplicate answer to an earlier poll (both the
                            // original and the poll answer arrived): discard.
                        }
                        Frame::Replies { seq: got, .. } => {
                            panic!("remote transport: reply {got} from the future (awaiting {seq})")
                        }
                        other => panic!("remote transport: expected a reply frame, got {other:?}"),
                    }
                }
                Ok(None) => {
                    // Deadline missed: the reply (or the batch's effect) may
                    // be lost. Degrade to a poll instead of hanging.
                    polls_this_wait += 1;
                    assert!(
                        polls_this_wait <= MAX_POLLS,
                        "remote transport: no reply for seq {seq} within {MAX_POLLS} deadlines — peer unresponsive"
                    );
                    meter.push_label(ProtocolLabel::Recovery);
                    meter.record(MessageKind::DownstreamUnicast);
                    meter.pop_label();
                    self.polls_sent += 1;
                    self.send(&Frame::Poll { seq });
                }
                Err(e) => panic!("remote transport: failed to read reply frame: {e}"),
            }
        }
    }
}

/// TCP-loopback engine (see the module documentation).
pub struct RemoteEngine {
    /// Server-side mirror of node values/filters/groups, for free peeks.
    mirror: NodeStateSoA,
    /// Last broadcast parameters (for the mirror's filter re-derivation).
    params: Option<FilterParams>,
    /// One connection per shard, indexed by shard; `bounds[s]..bounds[s+1]`
    /// is the node range of shard `s`.
    conns: Vec<Conn>,
    bounds: Vec<usize>,
    handles: Vec<JoinHandle<()>>,
    meter: CostMeter,
}

impl std::fmt::Debug for RemoteEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteEngine")
            .field("n", &self.mirror.len())
            .field("shards", &self.conns.len())
            .field("transport", &self.transport_stats())
            .finish()
    }
}

impl RemoteEngine {
    /// Creates an engine with `n` nodes on as many shard connections as the
    /// machine has usable parallelism (at least one, at most `n`), with
    /// per-node RNGs derived from `master_seed` exactly like every other
    /// engine's.
    ///
    /// ```
    /// use topk_net::{Network, RemoteEngine};
    ///
    /// let mut net = RemoteEngine::new(4, 7);
    /// net.advance_time(&[10, 20, 30, 40]);
    /// assert_eq!(net.probe(topk_model::NodeId(2)), 30);
    /// ```
    pub fn new(n: usize, master_seed: u64) -> RemoteEngine {
        let parallelism = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        RemoteEngine::with_shards(n, master_seed, parallelism.clamp(1, n.max(1)))
    }

    /// Creates an engine with an explicit shard (connection) count.
    ///
    /// Shard `s` hosts the contiguous node range `⌊s·n/W⌋ .. ⌊(s+1)·n/W⌋`;
    /// shard counts above `n` leave the surplus connections empty but
    /// functional.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, or if binding the loopback listener or
    /// completing the join handshake fails.
    pub fn with_shards(n: usize, master_seed: u64, shards: usize) -> RemoteEngine {
        RemoteEngine::build(n, master_seed, shards, None, None)
    }

    /// Creates an engine on a lossy transport: shard clients drop whole
    /// reply frames with the spec's upstream-drop probability (seeded per
    /// shard from [`FaultSpec::seed`]), and the server arms every connection
    /// with `timeout` so a missing reply degrades to a [`Frame::Poll`]
    /// within the deadline instead of hanging (see the module docs).
    ///
    /// Only `seed` and `drop_upstream_permille` of the spec apply here —
    /// the wire transport injects faults at frame granularity; the
    /// message-granular fault families live in
    /// [`FaultyTransport`](crate::FaultyTransport).
    ///
    /// # Panics
    ///
    /// Panics if the spec is malformed, if `shards == 0`, if `timeout` is
    /// zero (a zero read timeout is not a valid socket deadline), or if the
    /// handshake fails.
    pub fn with_fault_spec(
        n: usize,
        master_seed: u64,
        shards: usize,
        spec: &FaultSpec,
        timeout: Duration,
    ) -> RemoteEngine {
        spec.validate();
        assert!(!timeout.is_zero(), "reply deadline must be non-zero");
        RemoteEngine::build(
            n,
            master_seed,
            shards,
            Some((spec.seed, spec.drop_upstream_permille)),
            Some(timeout),
        )
    }

    fn build(
        n: usize,
        master_seed: u64,
        shards: usize,
        faults: Option<(u64, u32)>,
        timeout: Option<Duration>,
    ) -> RemoteEngine {
        assert!(shards > 0, "at least one shard connection is required");
        let listener =
            TcpListener::bind(("127.0.0.1", 0)).expect("remote transport: cannot bind loopback");
        let addr = listener
            .local_addr()
            .expect("remote transport: listener has no local address");
        let bounds = shard_bounds(n, shards);
        let handles: Vec<JoinHandle<()>> = (0..shards)
            .map(|s| {
                let (lo, hi) = (bounds[s], bounds[s + 1]);
                std::thread::Builder::new()
                    .name(format!("topk-shard-{s}"))
                    .spawn(move || run_shard_client(addr, s as u32, lo, hi, master_seed, faults))
                    .expect("remote transport: cannot spawn shard client")
            })
            .collect();
        // Accept every client and slot it by the shard index in its Join
        // frame — accept order is scheduler-dependent, the handshake is not.
        let mut slots: Vec<Option<Conn>> = (0..shards).map(|_| None).collect();
        for _ in 0..shards {
            let (stream, _) = listener
                .accept()
                .expect("remote transport: accept failed during handshake");
            stream
                .set_nodelay(true)
                .expect("remote transport: cannot set TCP_NODELAY");
            let mut conn = Conn {
                reader: stream
                    .try_clone()
                    .expect("remote transport: cannot clone stream"),
                writer: BufWriter::new(stream),
                acc: FrameAccumulator::new(),
                next_seq: 1,
                polls_sent: 0,
                stats: TransportStats::default(),
            };
            let (frame, bytes) = read_frame(&mut conn.reader)
                .unwrap_or_else(|e| panic!("remote transport: bad join frame: {e}"));
            conn.stats.frames_received += 1;
            conn.stats.bytes_received += bytes as u64;
            let Frame::Join { shard } = frame else {
                panic!("remote transport: expected a join frame, got {frame:?}");
            };
            let slot = &mut slots[shard as usize];
            assert!(slot.is_none(), "shard {shard} joined twice");
            *slot = Some(conn);
        }
        let conns: Vec<Conn> = slots
            .into_iter()
            .map(|c| c.expect("all shards joined"))
            .collect();
        // Arm the reply deadline only after the blocking handshake is done.
        if let Some(deadline) = timeout {
            for conn in &conns {
                conn.reader
                    .set_read_timeout(Some(deadline))
                    .expect("remote transport: cannot set read timeout");
            }
        }
        RemoteEngine {
            mirror: NodeStateSoA::new(n),
            params: None,
            conns,
            bounds,
            handles,
            meter: CostMeter::new(),
        }
    }

    /// Number of shard connections (client processes in a real deployment).
    pub fn shard_count(&self) -> usize {
        self.conns.len()
    }

    /// Total [`Frame::Poll`] retries sent over all connections. Zero on a
    /// reliable transport; timing-dependent (not bit-reproducible) on a
    /// lossy one.
    pub fn polls_sent(&self) -> u64 {
        self.conns.iter().map(|c| c.polls_sent).sum()
    }

    /// Aggregated wire-level counters over all shard connections.
    pub fn transport_stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for conn in &self.conns {
            total.frames_sent += conn.stats.frames_sent;
            total.frames_received += conn.stats.frames_received;
            total.bytes_sent += conn.stats.bytes_sent;
            total.bytes_received += conn.stats.bytes_received;
        }
        total
    }

    /// The node range of shard `s`.
    fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Sends a fire-and-forget single-op batch to one shard.
    fn command(&mut self, shard: usize, op: ServerOp) {
        self.conns[shard].send(&Frame::Batch {
            wants_reply: false,
            seq: 0,
            ops: vec![op],
        });
    }

    /// Delivers a server message to every node via per-shard broadcasts.
    fn broadcast_command(&mut self, msg: ServerMessage) {
        for s in 0..self.conns.len() {
            if self.range(s).is_empty() {
                continue;
            }
            self.command(s, ServerOp::Broadcast { msg });
        }
    }

    /// Mirror bookkeeping for a group change (the `SimNode` rule: the filter
    /// re-derives only once parameters were broadcast).
    fn mirror_group(&mut self, i: usize, group: NodeGroup) {
        self.mirror.set_group(i, group);
        if let Some(p) = self.params {
            self.mirror.set_filter(i, filter_for(group, &p));
        }
    }

    /// The shard owning node `node`.
    fn owner(&self, node: NodeId) -> usize {
        assert!(
            node.index() < self.mirror.len(),
            "node {node} out of range (n = {})",
            self.mirror.len()
        );
        shard_of(self.mirror.len(), self.conns.len(), node.index())
    }
}

impl Network for RemoteEngine {
    fn n(&self) -> usize {
        self.mirror.len()
    }

    fn advance_time(&mut self, values: &[Value]) {
        assert_eq!(
            values.len(),
            self.mirror.len(),
            "one observation per node required"
        );
        for s in 0..self.conns.len() {
            let range = self.range(s);
            if range.is_empty() {
                continue;
            }
            let op = ServerOp::ObserveRow {
                start: NodeId(range.start),
                values: values[range].to_vec(),
            };
            self.command(s, op);
        }
        for (i, &v) in values.iter().enumerate() {
            if self.mirror.value(i) != v {
                self.mirror.set_value(i, v);
            }
        }
        self.meter.record_time_step();
    }

    fn advance_time_sparse(&mut self, changes: &[(NodeId, Value)]) {
        // Route each change to its owning shard; one frame per shard that
        // has any. Per-shard order preserves the caller's order, so
        // duplicate entries still resolve last-wins like the baseline.
        let mut routed: Vec<Vec<(NodeId, Value)>> = vec![Vec::new(); self.conns.len()];
        for &(node, v) in changes {
            routed[self.owner(node)].push((node, v));
            self.mirror.set_value(node.index(), v);
        }
        for (s, changes) in routed.into_iter().enumerate() {
            if !changes.is_empty() {
                self.command(s, ServerOp::ObserveSparse { changes });
            }
        }
        self.meter.record_time_step();
    }

    fn broadcast_params(&mut self, params: FilterParams) {
        self.meter.record(MessageKind::Broadcast);
        self.broadcast_command(ServerMessage::BroadcastParams(params));
        self.params = Some(params);
        for i in 0..self.mirror.len() {
            let f = filter_for(self.mirror.group(i), &params);
            self.mirror.set_filter(i, f);
        }
    }

    fn assign_group(&mut self, node: NodeId, group: NodeGroup) {
        self.meter.record(MessageKind::DownstreamUnicast);
        let owner = self.owner(node);
        self.command(
            owner,
            ServerOp::Unicast {
                node,
                msg: ServerMessage::AssignGroup(group),
            },
        );
        self.mirror_group(node.index(), group);
    }

    fn broadcast_group(&mut self, group: NodeGroup) {
        self.meter.record(MessageKind::Broadcast);
        self.broadcast_command(ServerMessage::BroadcastGroup(group));
        for i in 0..self.mirror.len() {
            self.mirror_group(i, group);
        }
    }

    fn assign_filter(&mut self, node: NodeId, filter: Filter) {
        self.meter.record(MessageKind::DownstreamUnicast);
        let owner = self.owner(node);
        self.command(
            owner,
            ServerOp::Unicast {
                node,
                msg: ServerMessage::AssignFilter(filter),
            },
        );
        self.mirror.set_filter(node.index(), filter);
    }

    fn probe(&mut self, node: NodeId) -> Value {
        self.meter.record(MessageKind::DownstreamUnicast);
        let owner = self.owner(node);
        let seq = self.conns[owner].send_query(vec![ServerOp::Unicast {
            node,
            msg: ServerMessage::Probe,
        }]);
        let replies = self.conns[owner].recv_replies(seq, &mut self.meter);
        self.meter.record(MessageKind::Upstream);
        match replies.as_slice() {
            [NodeMessage::ValueReport { value, .. }] => *value,
            other => panic!("probe must be answered with one value report, got {other:?}"),
        }
    }

    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    ) {
        self.meter.record_round();
        let msg = ServerMessage::ExistenceRound {
            round,
            population,
            predicate,
        };
        // Send the round to every occupied shard first, then collect the
        // replies in shard order: the shards flip their coins concurrently
        // and the ordered collection restores the global id order. Runs on
        // every round of every violation check, so the shard walks stay
        // allocation-free (beyond the frame encodings themselves).
        for s in 0..self.conns.len() {
            if self.range(s).is_empty() {
                continue;
            }
            self.conns[s].send_query(vec![ServerOp::Broadcast { msg }]);
        }
        replies.clear();
        for s in 0..self.conns.len() {
            if self.range(s).is_empty() {
                continue;
            }
            // Nothing interleaved since the send above, so the shard's round
            // query is the last sequence number the connection issued.
            let seq = self.conns[s].next_seq - 1;
            let shard_replies = self.conns[s].recv_replies(seq, &mut self.meter);
            replies.extend(shard_replies);
        }
        self.meter
            .record_many(MessageKind::Upstream, replies.len() as u64);
    }

    fn end_existence_run(&mut self) {
        self.meter.record(MessageKind::Broadcast);
        self.broadcast_command(ServerMessage::EndExistenceRun);
    }

    fn meter(&mut self) -> &mut CostMeter {
        &mut self.meter
    }

    fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    fn peek_value(&self, node: NodeId) -> Value {
        self.mirror.value(node.index())
    }

    fn peek_filter(&self, node: NodeId) -> Filter {
        self.mirror.filter(node.index())
    }

    fn peek_group(&self, node: NodeId) -> NodeGroup {
        self.mirror.group(node.index())
    }

    fn peek_filters_into(&self, out: &mut Vec<Filter>) {
        out.clear();
        out.extend(self.mirror.filters().map(|(_, f)| f));
    }

    fn peek_values_into(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend_from_slice(self.mirror.values());
    }
}

impl Drop for RemoteEngine {
    fn drop(&mut self) {
        for conn in &mut self.conns {
            // Best effort: a client that already died closed its socket, and
            // the join below reaps it either way.
            let _ = write_frame(&mut conn.writer, &Frame::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Body of one shard-client thread: connect, join, then serve batches until
/// shutdown.
///
/// The client owns the [`SimNode`] state machines of global ids `lo..hi` and
/// is driven *only* by decoded frames — it shares no memory with the server.
/// Replies accumulate in ascending node-id order because every op iterates
/// the shard's nodes in ascending order.
///
/// With `faults` set to `(seed, drop_permille)`, the client simulates a
/// lossy upstream link: each *first* transmission of a reply frame is
/// dropped with the given probability (from a per-shard ChaCha8 stream), and
/// the retained copy is re-sent — always, so retries converge — when the
/// server polls for it.
fn run_shard_client(
    addr: SocketAddr,
    shard: u32,
    lo: usize,
    hi: usize,
    master_seed: u64,
    faults: Option<(u64, u32)>,
) {
    let stream = TcpStream::connect(addr).expect("shard client: cannot connect to server");
    stream
        .set_nodelay(true)
        .expect("shard client: cannot set TCP_NODELAY");
    let mut reader = BufReader::new(stream.try_clone().expect("shard client: clone stream"));
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &Frame::Join { shard }).expect("shard client: join handshake failed");

    let mut drop_rng = faults.map(|(seed, _)| {
        // Golden-ratio mix so shard streams are disjoint even for small seeds.
        ChaCha8Rng::seed_from_u64(
            seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(shard) + 1),
        )
    });
    let drop_permille = faults.map_or(0, |(_, p)| p.min(1000));
    let mut nodes: Vec<SimNode> = (lo..hi)
        .map(|i| SimNode::new(NodeId(i), master_seed))
        .collect();
    let mut replies: Vec<NodeMessage> = Vec::new();
    // The last reply produced, kept for answering polls (the two reply
    // buffers ping-pong so one pair of allocations serves the connection).
    let mut last: (u64, Vec<NodeMessage>) = (0, Vec::new());
    loop {
        let frame = match read_frame(&mut reader) {
            Ok((frame, _)) => frame,
            // The server dropped without an orderly shutdown (e.g. a test
            // panicked): exit quietly, the Drop impl reaps the thread.
            Err(WireError::Io(_)) => return,
            Err(e) => panic!("shard client {shard}: corrupt frame: {e}"),
        };
        match frame {
            Frame::Batch {
                wants_reply,
                seq,
                ops,
            } => {
                replies.clear();
                for op in ops {
                    apply_op(&mut nodes, lo, op, &mut replies);
                }
                if wants_reply {
                    // The drop coin applies to the first transmission only;
                    // poll answers always go out, so one poll recovers any
                    // lost frame.
                    let lost = drop_permille > 0
                        && drop_rng
                            .as_mut()
                            .is_some_and(|rng| rng.gen_ratio(drop_permille, 1000));
                    let frame = Frame::Replies {
                        seq,
                        replies: std::mem::take(&mut replies),
                    };
                    if !lost {
                        write_frame(&mut writer, &frame)
                            .expect("shard client: cannot send replies");
                    }
                    let Frame::Replies { seq, replies: sent } = frame else {
                        unreachable!("frame constructed as Replies above")
                    };
                    replies = std::mem::replace(&mut last, (seq, sent)).1;
                }
            }
            Frame::Poll { seq } => {
                // TCP ordering guarantees the polled batch arrived before
                // the poll, so the retained reply must be the one asked for.
                assert_eq!(
                    last.0, seq,
                    "shard client {shard}: poll for a reply never produced"
                );
                let answer = Frame::Replies {
                    seq,
                    replies: last.1.clone(),
                };
                write_frame(&mut writer, &answer).expect("shard client: cannot answer poll");
            }
            Frame::Shutdown => return,
            other => panic!("shard client {shard}: unexpected frame {other:?}"),
        }
    }
}

/// Applies one decoded batch operation to a shard's nodes, appending any
/// upstream messages to `replies` in ascending node-id order.
fn apply_op(nodes: &mut [SimNode], lo: usize, op: ServerOp, replies: &mut Vec<NodeMessage>) {
    match op {
        ServerOp::ObserveRow { start, values } => {
            let base = start.index() - lo;
            for (j, v) in values.into_iter().enumerate() {
                nodes[base + j].observe(v);
            }
        }
        ServerOp::ObserveSparse { changes } => {
            for (node, v) in changes {
                nodes[node.index() - lo].observe(v);
            }
        }
        ServerOp::Unicast { node, msg } => {
            if let Some(reply) = nodes[node.index() - lo].handle(&msg) {
                replies.push(reply);
            }
        }
        ServerOp::Broadcast { msg } => {
            for node in nodes.iter_mut() {
                if let Some(reply) = node.handle(&msg) {
                    replies.push(reply);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicEngine;

    #[test]
    fn basic_flow_matches_baseline_semantics() {
        let mut net = RemoteEngine::with_shards(5, 1, 2);
        net.advance_time(&[10, 20, 30, 40, 50]);
        net.broadcast_params(FilterParams::Separator { lo: 25, hi: 25 });
        net.assign_filter(NodeId(0), Filter::at_least(40));
        net.assign_group(NodeId(1), NodeGroup::Upper);
        assert_eq!(net.probe(NodeId(4)), 50);
        let stats = net.stats();
        assert_eq!(stats.messages_of_kind(MessageKind::Broadcast), 1);
        assert_eq!(stats.messages_of_kind(MessageKind::DownstreamUnicast), 3);
        assert_eq!(stats.messages_of_kind(MessageKind::Upstream), 1);
        assert_eq!(stats.time_steps, 1);
        assert_eq!(net.peek_filter(NodeId(1)), Filter::at_least(25));
        assert_eq!(net.peek_filter(NodeId(2)), Filter::at_most(25));
        assert_eq!(net.peek_group(NodeId(1)), NodeGroup::Upper);
        assert_eq!(net.peek_values(), vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn matches_baseline_on_a_scripted_run() {
        let script = |net: &mut dyn Network| {
            net.advance_time(&[3, 1, 4, 1, 5, 9, 2, 6]);
            net.assign_group(NodeId(5), NodeGroup::Upper);
            net.broadcast_params(FilterParams::Separator { lo: 5, hi: 5 });
            let mut found = Vec::new();
            for round in 0..=3 {
                let r = net.existence_round(round, 8, ExistencePredicate::PendingViolation);
                if !r.is_empty() {
                    found = r;
                    net.end_existence_run();
                    break;
                }
            }
            net.advance_time_sparse(&[(NodeId(7), 4), (NodeId(0), 9)]);
            let max = net.existence_round(10, 8, ExistencePredicate::AtLeast(9));
            (found, max, net.stats())
        };
        for shards in [1, 3, 8] {
            let mut base = DeterministicEngine::new(8, 1234);
            let mut remote = RemoteEngine::with_shards(8, 1234, shards);
            let (f_base, m_base, s_base) = script(&mut base);
            let (f_rem, m_rem, s_rem) = script(&mut remote);
            assert_eq!(
                f_base, f_rem,
                "violation replies diverge at {shards} shards"
            );
            assert_eq!(
                m_base, m_rem,
                "threshold replies diverge at {shards} shards"
            );
            assert_eq!(s_base, s_rem, "stats diverge at {shards} shards");
            assert_eq!(base.peek_filters(), remote.peek_filters());
            assert_eq!(base.peek_values(), remote.peek_values());
            for i in 0..8 {
                assert_eq!(base.peek_group(NodeId(i)), remote.peek_group(NodeId(i)));
            }
        }
    }

    #[test]
    fn transport_counters_track_wire_activity() {
        let mut net = RemoteEngine::with_shards(4, 9, 2);
        let after_handshake = net.transport_stats();
        assert_eq!(after_handshake.frames_received, 2, "one join per shard");
        net.advance_time(&[1, 2, 3, 4]);
        let after_row = net.transport_stats();
        assert_eq!(after_row.frames_sent, 2, "one observation frame per shard");
        assert!(after_row.bytes_sent > 0);
        // A probe costs one frame out and one reply frame back on one conn.
        net.probe(NodeId(0));
        let after_probe = net.transport_stats();
        assert_eq!(after_probe.frames_sent, after_row.frames_sent + 1);
        assert_eq!(
            after_probe.frames_received,
            after_handshake.frames_received + 1
        );
    }

    #[test]
    fn more_shards_than_nodes_leaves_surplus_connections_idle() {
        let mut net = RemoteEngine::with_shards(2, 3, 5);
        assert_eq!(net.shard_count(), 5);
        net.advance_time(&[7, 8]);
        let replies = net.existence_round(10, 2, ExistencePredicate::GreaterThan(0));
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].sender(), NodeId(0));
        assert_eq!(replies[1].sender(), NodeId(1));
    }

    #[test]
    fn silent_rounds_cost_model_nothing_but_cross_the_wire() {
        let mut net = RemoteEngine::with_shards(8, 5, 2);
        net.advance_time(&[10; 8]);
        let before = net.stats().total_messages();
        let wire_before = net.transport_stats().frames();
        let replies = net.existence_round(10, 8, ExistencePredicate::GreaterThan(100));
        assert!(replies.is_empty());
        assert_eq!(
            net.stats().total_messages(),
            before,
            "silent round is free in the model"
        );
        assert!(
            net.transport_stats().frames() > wire_before,
            "but the round schedule genuinely crossed the socket"
        );
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let net = RemoteEngine::with_shards(3, 1, 3);
        drop(net); // must not hang or panic
    }

    #[test]
    fn lossy_replies_degrade_to_polls_and_converge() {
        let spec = FaultSpec::drop_upstream(0xBEEF, 800);
        let script = |net: &mut RemoteEngine| {
            let mut out = Vec::new();
            net.advance_time(&[10, 20, 30, 40, 50, 60]);
            for round in 0..4 {
                out.push(net.existence_round(round, 6, ExistencePredicate::AtLeast(35)));
            }
            out.push(vec![NodeMessage::ValueReport {
                node: NodeId(0),
                value: net.probe(NodeId(3)),
            }]);
            out
        };
        let mut clean = RemoteEngine::with_shards(6, 77, 2);
        let mut lossy = RemoteEngine::with_fault_spec(6, 77, 2, &spec, Duration::from_millis(20));
        let clean_out = script(&mut clean);
        let lossy_out = script(&mut lossy);
        assert_eq!(clean_out, lossy_out, "polls must recover every lost reply");
        assert!(
            lossy.polls_sent() > 0,
            "an 80% drop rate over 9 reply frames cannot go unnoticed"
        );
        // Recovery traffic is separable: strip it and the clean run remains.
        let mut lossy_stats = lossy.stats();
        let recovery = lossy_stats.messages_of_label(ProtocolLabel::Recovery);
        assert_eq!(recovery, lossy.polls_sent(), "one recovery unit per poll");
        lossy_stats
            .by_label_kind
            .retain(|(label, _), _| *label != ProtocolLabel::Recovery);
        assert_eq!(lossy_stats, clean.stats());
    }
}
