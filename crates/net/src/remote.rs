//! TCP-loopback engine: the protocols over a real socket.
//!
//! [`RemoteEngine`] hosts the server coordinator in the current process and
//! the node population as *client connections*: construction binds a TCP
//! listener on `127.0.0.1`, spawns one client per shard (a contiguous node
//! range, the same `partition.rs` arithmetic the sharded and threaded
//! engines use), and waits for each client to connect and identify itself
//! with a `Join` frame. Every [`Network`] operation is then encoded with
//! `topk-wire`, framed, and moved through the sockets — the messages the
//! paper charges for genuinely cross a transport instead of a function call.
//!
//! ## Frame discipline
//!
//! Each `Network` call produces at most one [`Frame::Batch`] per involved
//! shard connection. Pure commands (observations, filter/group updates,
//! parameter broadcasts, end-of-run announcements) are *fire-and-forget*:
//! TCP's per-connection ordering guarantees a shard applies them before any
//! later frame, so the server never blocks on them. Operations that the
//! model answers upstream — probes and existence rounds — set the batch's
//! `wants_reply` flag and a per-connection sequence number, and the server
//! then reads exactly one matching [`Frame::Replies`] per queried shard,
//! *in shard order*. Shards are contiguous ascending id ranges and every
//! shard replies in ascending node id order, so the concatenation is the
//! global id order — the reply order of
//! [`DeterministicEngine`](crate::DeterministicEngine).
//!
//! ## Timeouts, polls and lossy transports
//!
//! [`RemoteEngine::with_fault_spec`] arms the reply path against loss: the
//! server sets a read timeout on every connection and, when the answer to a
//! `wants_reply` batch does not arrive within the deadline, sends a
//! [`Frame::Poll`] for the missing sequence number instead of hanging. The
//! client retains its last reply and answers the poll from that copy;
//! sequence numbers let the server discard a duplicate (original and poll
//! answer both arriving) instead of mistaking it for the next round's
//! answer. Each poll is charged one model downstream unicast under
//! [`ProtocolLabel::Recovery`], so recovery traffic is separable in the
//! `CommStats`; the replies themselves are charged once, on acceptance.
//! Mid-frame timeouts are safe because the reply path reads through a
//! [`FrameAccumulator`] (`topk-wire`), which parks partial frames across
//! timeouts instead of desynchronising the stream.
//!
//! The injected faults are *frame-granular*: the client drops whole reply
//! frames with the spec's upstream-drop probability, seeded per shard from
//! [`FaultSpec::seed`]. Message-granular faults (per-reply latency, crash /
//! rejoin, reordering) live in [`FaultyTransport`](crate::FaultyTransport),
//! which wraps in-process engines — the two layers exercise the same spec
//! vocabulary at the granularity each transport actually has. Poll *counts*
//! depend on real socket timing and are therefore not bit-reproducible;
//! correctness (replies, node state, non-recovery `CommStats`) is.
//!
//! ## Membership, reconnects and version negotiation
//!
//! [`Network::apply_membership`] churns the *model* population: leavers'
//! streams collapse to `0`, joiners are reseeded from `(master seed, id,
//! generation)` and brought up to date under the `Recovery` label — the
//! normative semantics in `docs/FAULTS.md`, applied here by shipping the
//! events to the owning shard as [`ServerOp::Membership`] so both sides of
//! the socket make the identical state transitions.
//!
//! Orthogonally, [`RemoteEngine::disconnect_shard`] /
//! [`RemoteEngine::reconnect_shard`] churn the *transport*: once every slot
//! of a shard has left the population, its connection can be torn down
//! through an orderly goodbye ([`Frame::Shutdown`] out, [`Frame::Leave`]
//! back) and later re-established with a fresh client. Two defenses keep a
//! stale reconnected shard from poisoning the stream: the `Join` handshake
//! names the shard (a connection claiming the wrong shard is refused), and
//! the replacement connection inherits the retired one's sequence counter,
//! so any reply a previous incarnation left in flight is numbered below
//! every awaited sequence and falls into the duplicate-discard path.
//! Reconnection is free in the model — parameters are replayed as
//! connection state transfer; the slots stay dead until membership `Join`
//! events re-admit them (charging their recovery replay normally).
//!
//! The `Join` handshake also negotiates the wire version: the client frames
//! its `Join` at [`LEGACY_WIRE_VERSION`] (readable by any server) while
//! advertising its maximum, the server answers every subsequent frame at
//! `min(`[`WIRE_VERSION`]`, advertised max)`, and the client mirrors the
//! version the server's frames arrive in — version-2 peers on either side
//! interoperate, version-3 pairs get CRC-trailed frames.
//!
//! ## Why the engine is bit-identical to the in-process baseline
//!
//! The clients drive the very same [`SimNode`] state machine on the very
//! same per-node `(master seed, node id)` RNG streams, and the wire format
//! round-trips every message losslessly (`topk-wire`'s proptests). A node's
//! RNG advances only inside its own coin flip, so neither the sharding nor
//! the transport can perturb any random stream; the id-ordered reply merge
//! restores the baseline's reply sequence; and the server charges the
//! [`CostMeter`] with exactly the baseline's accounting rules. Hence
//! replies, `CommStats` and all node state match the baseline bit for bit —
//! `tests/indexed_differential.rs` proves it over randomized schedules, and
//! `topk-core`'s monitors run unchanged over loopback.
//!
//! ## Server-side state mirror
//!
//! The free `peek_*` inspection API must not generate traffic (peeks are
//! not part of the model). The server therefore mirrors the deterministic
//! part of node state — values it delivered, filters/groups/params it sent —
//! in a [`NodeStateSoA`] and answers peeks locally. The mirror cannot drift:
//! filters derive through the same pure [`filter_for`] both sides evaluate,
//! and the differential battery asserts mirror state equals the baseline's
//! node state after every schedule.

use crate::network::Network;
use crate::node::SimNode;
use crate::partition::{shard_bounds, shard_of};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::rule::filter_for;
use topk_model::soa::NodeStateSoA;
use topk_wire::{
    read_frame, read_frame_versioned, write_frame_versioned, Frame, FrameAccumulator, ServerOp,
    WireError, LEGACY_WIRE_VERSION, QUERY_WIRE_VERSION, WIRE_VERSION,
};

/// Deterministic retry schedule for the reply-wait and reconnect paths.
///
/// Attempt `i` (0-indexed) waits `min(base · multiplierⁱ, cap)`; after
/// `max_attempts` misses the peer is declared dead and the engine panics.
/// The schedule is pure data — two engines configured with the same policy
/// arm the same sequence of deadlines, so fault experiments can state their
/// retry behaviour exactly instead of inheriting a hardcoded constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Deadline of the first attempt.
    pub base: Duration,
    /// Multiplicative backoff applied per further attempt (1 = fixed).
    pub multiplier: u32,
    /// Ceiling no deadline exceeds, however many attempts have passed.
    pub cap: Duration,
    /// Attempts before the peer is declared dead.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// Creates a policy, validating every field.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero (not a valid socket deadline), `multiplier`
    /// is zero (deadlines would collapse to zero), `cap < base`, or
    /// `max_attempts` is zero (the first miss would be fatal).
    pub fn new(base: Duration, multiplier: u32, cap: Duration, max_attempts: u32) -> RetryPolicy {
        assert!(!base.is_zero(), "retry base deadline must be non-zero");
        assert!(multiplier >= 1, "retry multiplier must be at least 1");
        assert!(cap >= base, "retry cap must be at least the base deadline");
        assert!(max_attempts >= 1, "at least one retry attempt is required");
        RetryPolicy {
            base,
            multiplier,
            cap,
            max_attempts,
        }
    }

    /// Capped exponential backoff from `base`: doubling deadlines up to
    /// `base × 8`, 32 attempts. The drop-in replacement for the former
    /// fixed-deadline, 32-poll rule — same first deadline, same give-up
    /// point, but patient with a peer that is slow rather than lossy.
    pub fn backoff_from(base: Duration) -> RetryPolicy {
        RetryPolicy::new(base, 2, base.saturating_mul(8), 32)
    }

    /// The deadline armed for 0-indexed `attempt`.
    pub fn deadline(&self, attempt: u32) -> Duration {
        self.base
            .saturating_mul(self.multiplier.saturating_pow(attempt.min(32)))
            .min(self.cap)
    }
}

impl Default for RetryPolicy {
    /// 20 ms doubling to a 160 ms cap, 32 attempts.
    fn default() -> RetryPolicy {
        RetryPolicy::backoff_from(Duration::from_millis(20))
    }
}

/// Transport-level counters of a [`RemoteEngine`] (all connections summed).
///
/// These measure *wire* activity — frames and bytes — as opposed to the
/// `CommStats` *model* accounting (one unit per protocol message). The
/// throughput harness's `--remote` axis reports both and their ratio
/// (bytes per model message).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames the server wrote to shard connections.
    pub frames_sent: u64,
    /// Frames the server read from shard connections.
    pub frames_received: u64,
    /// Bytes written, including length prefixes and frame headers.
    pub bytes_sent: u64,
    /// Bytes read, including length prefixes and frame headers.
    pub bytes_received: u64,
    /// Reply deadlines that elapsed and were degraded to [`Frame::Poll`]
    /// retries ([`RetryPolicy`] attempts past the first). Zero on a reliable
    /// transport; timing-dependent on a lossy one.
    pub polls_sent: u64,
    /// Times this connection was torn down and re-established through the
    /// reconnect path.
    pub reconnects: u64,
}

impl TransportStats {
    /// Total frames moved in either direction.
    pub fn frames(&self) -> u64 {
        self.frames_sent + self.frames_received
    }

    /// Total bytes moved in either direction.
    pub fn bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Folds `other` into `self`, field by field.
    fn absorb(&mut self, other: &TransportStats) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.polls_sent += other.polls_sent;
        self.reconnects += other.reconnects;
    }
}

/// One framed server-side connection to a shard client.
struct Conn {
    writer: BufWriter<TcpStream>,
    /// Raw stream + resumable accumulator instead of a blocking buffered
    /// reader: a read timeout may strike mid-frame, and the accumulator
    /// parks the partial frame instead of desynchronising the stream.
    reader: TcpStream,
    acc: FrameAccumulator,
    /// Wire version negotiated in the `Join` handshake: every frame this
    /// connection writes is framed at `min(WIRE_VERSION, client max)`, so a
    /// legacy (version 2) client keeps working without CRC trailers.
    wire_version: u8,
    /// Next sequence number for a `wants_reply` batch (0 is reserved for
    /// fire-and-forget batches). Survives reconnects — a replacement
    /// connection inherits the old one's counter, so any stale reply a
    /// previous incarnation produced is numbered below every sequence this
    /// one awaits and falls into the duplicate-discard path instead of
    /// poisoning the stream.
    next_seq: u64,
    /// The read deadline currently armed on the socket (`None` = blocking
    /// reads). Tracked so the engine can prove the backoff schedule resets:
    /// after a successful reply — and on a freshly accepted (re)connection —
    /// this must be back at the policy's *base* deadline, never a leftover
    /// escalated one.
    armed_deadline: Option<Duration>,
    stats: TransportStats,
}

impl Conn {
    fn send(&mut self, frame: &Frame) {
        let bytes = write_frame_versioned(&mut self.writer, frame, self.wire_version)
            .unwrap_or_else(|e| panic!("remote transport: failed to send frame: {e}"));
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += bytes as u64;
    }

    /// Sends a `wants_reply` batch, stamping it with the next sequence
    /// number, and returns that number for the matching receive.
    fn send_query(&mut self, ops: Vec<ServerOp>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send(&Frame::Batch {
            wants_reply: true,
            seq,
            ops,
        });
        seq
    }

    /// Receives the reply for `seq`, degrading a missed deadline to a
    /// [`Frame::Poll`] (charged as a recovery downstream unicast on `meter`)
    /// and discarding duplicate answers to earlier polls. Each further wait
    /// re-arms the socket with the policy's next backoff deadline; the base
    /// deadline is restored once the reply lands.
    ///
    /// Without a configured read timeout this never observes a deadline and
    /// behaves exactly like the blocking v1 reader.
    fn recv_replies(
        &mut self,
        seq: u64,
        meter: &mut CostMeter,
        policy: Option<&RetryPolicy>,
    ) -> Vec<NodeMessage> {
        let mut attempts = 0u32;
        loop {
            match self.acc.read_frame(&mut self.reader) {
                Ok(Some((frame, bytes))) => {
                    self.stats.frames_received += 1;
                    self.stats.bytes_received += bytes as u64;
                    match frame {
                        Frame::Replies { seq: got, replies } if got == seq => {
                            if attempts > 0 {
                                let policy = policy.expect("attempts imply a policy");
                                self.arm_deadline(policy.deadline(0));
                            }
                            return replies;
                        }
                        Frame::Replies { seq: got, .. } if got < seq => {
                            // A duplicate answer to an earlier poll (both the
                            // original and the poll answer arrived), or a
                            // stale reply from before a reconnect: discard.
                        }
                        Frame::Replies { seq: got, .. } => {
                            panic!("remote transport: reply {got} from the future (awaiting {seq})")
                        }
                        other => panic!("remote transport: expected a reply frame, got {other:?}"),
                    }
                }
                Ok(None) => {
                    // Deadline missed: the reply (or the batch's effect) may
                    // be lost. Degrade to a poll instead of hanging, and back
                    // off so a slow-but-healthy peer is not buried in polls.
                    let policy =
                        policy.expect("remote transport: deadline observed without a retry policy");
                    attempts += 1;
                    assert!(
                        attempts <= policy.max_attempts,
                        "remote transport: no reply for seq {seq} within {} deadlines — peer unresponsive",
                        policy.max_attempts
                    );
                    self.arm_deadline(policy.deadline(attempts));
                    meter.push_label(ProtocolLabel::Recovery);
                    meter.record(MessageKind::DownstreamUnicast);
                    meter.pop_label();
                    self.stats.polls_sent += 1;
                    self.send(&Frame::Poll { seq });
                }
                Err(e) => panic!("remote transport: failed to read reply frame: {e}"),
            }
        }
    }

    fn arm_deadline(&mut self, deadline: Duration) {
        self.reader
            .set_read_timeout(Some(deadline))
            .expect("remote transport: cannot set read timeout");
        self.armed_deadline = Some(deadline);
    }
}

/// TCP-loopback engine (see the module documentation).
pub struct RemoteEngine {
    /// Server-side mirror of node values/filters/groups, for free peeks.
    mirror: NodeStateSoA,
    /// Last broadcast parameters (for the mirror's filter re-derivation).
    params: Option<FilterParams>,
    /// One connection per shard, indexed by shard; `bounds[s]..bounds[s+1]`
    /// is the node range of shard `s`. `None` while a shard is disconnected
    /// (between [`RemoteEngine::disconnect_shard`] and
    /// [`RemoteEngine::reconnect_shard`]).
    conns: Vec<Option<Conn>>,
    bounds: Vec<usize>,
    handles: Vec<Option<JoinHandle<()>>>,
    meter: CostMeter,
    /// Retained for reseeding joining nodes and respawning shard clients.
    master_seed: u64,
    /// Live/generation map driving observation masking and join replay.
    population: Population,
    /// Scratch row for masking dead slots out of dense observations.
    masked_row: Vec<Value>,
    /// Kept open for the reconnect path (dropping it would close the port).
    listener: TcpListener,
    /// `(seed, drop_permille)` of the fault spec, if lossy — respawned shard
    /// clients inherit it.
    faults: Option<(u64, u32)>,
    /// Reply-deadline/backoff schedule; `None` means blocking reads.
    policy: Option<RetryPolicy>,
    /// Per-shard counters of connections that were since torn down, so
    /// transport totals never move backwards across reconnects.
    retired: Vec<TransportStats>,
    /// Per-shard sequence floor carried across reconnects: a replacement
    /// connection resumes numbering here, keeping every awaited sequence
    /// strictly above anything a previous incarnation could have produced.
    seq_floor: Vec<u64>,
}

impl std::fmt::Debug for RemoteEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteEngine")
            .field("n", &self.mirror.len())
            .field("shards", &self.conns.len())
            .field("transport", &self.transport_stats())
            .finish()
    }
}

impl RemoteEngine {
    /// Creates an engine with `n` nodes on as many shard connections as the
    /// machine has usable parallelism (at least one, at most `n`), with
    /// per-node RNGs derived from `master_seed` exactly like every other
    /// engine's.
    ///
    /// ```
    /// use topk_net::{Network, RemoteEngine};
    ///
    /// let mut net = RemoteEngine::new(4, 7);
    /// net.advance_time(&[10, 20, 30, 40]);
    /// assert_eq!(net.probe(topk_model::NodeId(2)), 30);
    /// ```
    pub fn new(n: usize, master_seed: u64) -> RemoteEngine {
        let parallelism = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        RemoteEngine::with_shards(n, master_seed, parallelism.clamp(1, n.max(1)))
    }

    /// Creates an engine with an explicit shard (connection) count.
    ///
    /// Shard `s` hosts the contiguous node range `⌊s·n/W⌋ .. ⌊(s+1)·n/W⌋`;
    /// shard counts above `n` leave the surplus connections empty but
    /// functional.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, or if binding the loopback listener or
    /// completing the join handshake fails.
    pub fn with_shards(n: usize, master_seed: u64, shards: usize) -> RemoteEngine {
        RemoteEngine::build(n, master_seed, shards, None, None)
    }

    /// Creates an engine on a lossy transport: shard clients drop whole
    /// reply frames with the spec's upstream-drop probability (seeded per
    /// shard from [`FaultSpec::seed`]), and the server arms every connection
    /// with `timeout` so a missing reply degrades to a [`Frame::Poll`]
    /// within the deadline instead of hanging (see the module docs).
    ///
    /// Only `seed` and `drop_upstream_permille` of the spec apply here —
    /// the wire transport injects faults at frame granularity; the
    /// message-granular fault families live in
    /// [`FaultyTransport`](crate::FaultyTransport).
    ///
    /// # Panics
    ///
    /// Panics if the spec is malformed, if `shards == 0`, if `timeout` is
    /// zero (a zero read timeout is not a valid socket deadline), or if the
    /// handshake fails.
    pub fn with_fault_spec(
        n: usize,
        master_seed: u64,
        shards: usize,
        spec: &FaultSpec,
        timeout: Duration,
    ) -> RemoteEngine {
        assert!(!timeout.is_zero(), "reply deadline must be non-zero");
        RemoteEngine::with_fault_policy(
            n,
            master_seed,
            shards,
            spec,
            RetryPolicy::backoff_from(timeout),
        )
    }

    /// Like [`RemoteEngine::with_fault_spec`], but with an explicit
    /// [`RetryPolicy`] instead of the default capped-exponential schedule
    /// derived from a single deadline.
    ///
    /// # Panics
    ///
    /// Panics if the spec is malformed, if `shards == 0`, or if the
    /// handshake fails.
    pub fn with_fault_policy(
        n: usize,
        master_seed: u64,
        shards: usize,
        spec: &FaultSpec,
        policy: RetryPolicy,
    ) -> RemoteEngine {
        spec.validate();
        RemoteEngine::build(
            n,
            master_seed,
            shards,
            Some((spec.seed, spec.drop_upstream_permille)),
            Some(policy),
        )
    }

    fn build(
        n: usize,
        master_seed: u64,
        shards: usize,
        faults: Option<(u64, u32)>,
        policy: Option<RetryPolicy>,
    ) -> RemoteEngine {
        assert!(shards > 0, "at least one shard connection is required");
        let listener =
            TcpListener::bind(("127.0.0.1", 0)).expect("remote transport: cannot bind loopback");
        let addr = listener
            .local_addr()
            .expect("remote transport: listener has no local address");
        let bounds = shard_bounds(n, shards);
        let handles: Vec<Option<JoinHandle<()>>> = (0..shards)
            .map(|s| {
                let (lo, hi) = (bounds[s], bounds[s + 1]);
                let gens = vec![0u32; hi - lo];
                Some(
                    std::thread::Builder::new()
                        .name(format!("topk-shard-{s}"))
                        .spawn(move || {
                            run_shard_client(addr, s as u32, lo, hi, master_seed, faults, gens)
                        })
                        .expect("remote transport: cannot spawn shard client"),
                )
            })
            .collect();
        // Accept every client and slot it by the shard index in its Join
        // frame — accept order is scheduler-dependent, the handshake is not.
        let mut slots: Vec<Option<Conn>> = (0..shards).map(|_| None).collect();
        for _ in 0..shards {
            let (conn, shard) = accept_shard(&listener, policy.as_ref());
            let slot = &mut slots[shard as usize];
            assert!(slot.is_none(), "shard {shard} joined twice");
            *slot = Some(conn);
        }
        debug_assert!(slots.iter().all(Option::is_some), "all shards joined");
        RemoteEngine {
            mirror: NodeStateSoA::new(n),
            params: None,
            conns: slots,
            bounds,
            handles,
            meter: CostMeter::new(),
            master_seed,
            population: Population::new(n),
            masked_row: Vec::new(),
            listener,
            faults,
            policy,
            retired: vec![TransportStats::default(); shards],
            seq_floor: vec![1; shards],
        }
    }

    /// Number of shard connections (client processes in a real deployment).
    pub fn shard_count(&self) -> usize {
        self.conns.len()
    }

    /// Total [`Frame::Poll`] retries sent over all connections (including
    /// retired ones). Zero on a reliable transport; timing-dependent (not
    /// bit-reproducible) on a lossy one.
    pub fn polls_sent(&self) -> u64 {
        self.transport_stats().polls_sent
    }

    /// Aggregated wire-level counters over all shard connections, including
    /// the retired incarnations of reconnected shards.
    pub fn transport_stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for s in 0..self.conns.len() {
            total.absorb(&self.shard_transport_stats(s));
        }
        total
    }

    /// Wire-level counters of shard `s` alone: its live connection plus any
    /// retired incarnations. Lets experiments attribute polls and
    /// reconnects to the shard that suffered them.
    pub fn shard_transport_stats(&self, s: usize) -> TransportStats {
        let mut total = self.retired[s];
        if let Some(conn) = &self.conns[s] {
            total.absorb(&conn.stats);
        }
        total
    }

    /// The read deadline currently armed on shard `s`'s connection (`None`
    /// for blocking reads or while the shard is disconnected).
    ///
    /// The invariant this exposes: outside a retry exchange the armed
    /// deadline equals the policy's *base* deadline. Reply waits escalate it
    /// along the backoff schedule, but a successful reply — and a successful
    /// reconnect — restore the base, so one slow exchange never taxes every
    /// later one with an inflated first deadline.
    pub fn armed_deadline(&self, s: usize) -> Option<Duration> {
        self.conns[s].as_ref().and_then(|c| c.armed_deadline)
    }

    /// The node range of shard `s`.
    fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// The live connection of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if the shard is disconnected — every model operation requires
    /// the full population's transport to be up; churn is expressed with
    /// membership events, not silently skipped traffic.
    fn conn(&mut self, s: usize) -> &mut Conn {
        self.conns[s]
            .as_mut()
            .unwrap_or_else(|| panic!("remote transport: shard {s} is disconnected"))
    }

    /// Sends a fire-and-forget single-op batch to one shard.
    fn command(&mut self, shard: usize, op: ServerOp) {
        self.conn(shard).send(&Frame::Batch {
            wants_reply: false,
            seq: 0,
            ops: vec![op],
        });
    }

    /// Delivers a server message to every node via per-shard broadcasts.
    fn broadcast_command(&mut self, msg: ServerMessage) {
        for s in 0..self.conns.len() {
            if self.range(s).is_empty() {
                continue;
            }
            self.command(s, ServerOp::Broadcast { msg });
        }
    }

    /// Tears down shard `s`'s connection through the orderly goodbye path:
    /// a [`Frame::Shutdown`] out, the client's [`Frame::Leave`] back, then
    /// the thread is joined and the connection retired. The transport-level
    /// counterpart of the slots having left the population — which is why
    /// every slot of the shard must be dead first.
    ///
    /// # Panics
    ///
    /// Panics if any slot in the shard's range is still live, if the shard
    /// is already disconnected, or on a transport error during the goodbye.
    pub fn disconnect_shard(&mut self, s: usize) {
        for i in self.range(s) {
            assert!(
                !self.population.is_live(NodeId(i)),
                "disconnect of shard {s} requires slot {i} to have left the population"
            );
        }
        let mut conn = self.conns[s]
            .take()
            .unwrap_or_else(|| panic!("shard {s} is already disconnected"));
        conn.send(&Frame::Shutdown);
        // The goodbye is read without a deadline: the client answers
        // promptly or the connection is genuinely broken (a panic either
        // way, not a poll).
        conn.reader
            .set_read_timeout(None)
            .expect("remote transport: cannot clear read timeout");
        loop {
            match conn.acc.read_frame(&mut conn.reader) {
                Ok(Some((frame, bytes))) => {
                    conn.stats.frames_received += 1;
                    conn.stats.bytes_received += bytes as u64;
                    match frame {
                        Frame::Leave { shard } => {
                            assert_eq!(shard as usize, s, "leave frame from the wrong shard");
                            break;
                        }
                        // Stale poll answers may still be in flight: drain.
                        Frame::Replies { .. } => {}
                        other => {
                            panic!("remote transport: expected a leave frame, got {other:?}")
                        }
                    }
                }
                Ok(None) => unreachable!("no deadline is armed"),
                Err(e) => panic!("remote transport: goodbye handshake failed: {e}"),
            }
        }
        self.retired[s].absorb(&conn.stats);
        // The replacement connection continues this sequence counter; see
        // the field docs on `Conn::next_seq`.
        self.seq_floor[s] = conn.next_seq;
        drop(conn);
        if let Some(handle) = self.handles[s].take() {
            handle
                .join()
                .expect("remote transport: shard client panicked");
        }
    }

    /// Re-establishes shard `s`'s connection after
    /// [`RemoteEngine::disconnect_shard`]: spawns a fresh client (seeded
    /// with the slots' current generations), accepts it with the retry
    /// policy's capped backoff, re-runs the `Join` handshake (a connection
    /// claiming a different shard is refused), and replays the current
    /// filter parameters so later group reassignments re-derive filters
    /// exactly like every other engine. Free in the model — the parameter
    /// replay is connection state transfer, not protocol traffic; the
    /// *slots* are still dead until membership `Join` events re-admit them
    /// (and those charge their recovery replay normally).
    ///
    /// # Panics
    ///
    /// Panics if the shard is not disconnected or the client fails to
    /// connect within the policy's attempt budget.
    pub fn reconnect_shard(&mut self, s: usize) {
        assert!(
            self.conns[s].is_none(),
            "shard {s} is still connected — disconnect it first"
        );
        let addr = self
            .listener
            .local_addr()
            .expect("remote transport: listener has no local address");
        let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
        let gens: Vec<u32> = (lo..hi)
            .map(|i| self.population.generation(NodeId(i)))
            .collect();
        let master_seed = self.master_seed;
        let faults = self.faults;
        self.handles[s] = Some(
            std::thread::Builder::new()
                .name(format!("topk-shard-{s}"))
                .spawn(move || run_shard_client(addr, s as u32, lo, hi, master_seed, faults, gens))
                .expect("remote transport: cannot spawn shard client"),
        );
        let (mut conn, shard) = accept_shard(&self.listener, self.policy.as_ref());
        assert_eq!(
            shard as usize, s,
            "remote transport: reconnect handshake answered by a stale shard"
        );
        conn.next_seq = self.seq_floor[s];
        self.retired[s].reconnects += 1;
        self.conns[s] = Some(conn);
        // Connection state transfer: the fresh client's nodes never saw the
        // parameter broadcast the population retains, so replay it
        // (uncharged — the model's nodes never lost it).
        if let Some(params) = self.params {
            self.command(
                s,
                ServerOp::Broadcast {
                    msg: ServerMessage::BroadcastParams(params),
                },
            );
        }
    }

    /// Mirror bookkeeping for a group change (the `SimNode` rule: the filter
    /// re-derives only once parameters were broadcast).
    fn mirror_group(&mut self, i: usize, group: NodeGroup) {
        self.mirror.set_group(i, group);
        if let Some(p) = self.params {
            self.mirror.set_filter(i, filter_for(group, &p));
        }
    }

    /// The shard owning node `node`.
    fn owner(&self, node: NodeId) -> usize {
        assert!(
            node.index() < self.mirror.len(),
            "node {node} out of range (n = {})",
            self.mirror.len()
        );
        shard_of(self.mirror.len(), self.conns.len(), node.index())
    }
}

impl Network for RemoteEngine {
    fn n(&self) -> usize {
        self.mirror.len()
    }

    fn advance_time(&mut self, values: &[Value]) {
        assert_eq!(
            values.len(),
            self.mirror.len(),
            "one observation per node required"
        );
        // Dead slots stop receiving workload observations: mask their
        // entries to 0 before the row crosses the wire or hits the mirror.
        // The fast path (full population) skips the copy entirely.
        let mut scratch = std::mem::take(&mut self.masked_row);
        let values = if self.population.live_count() == self.population.n() {
            values
        } else {
            scratch.clear();
            scratch.extend_from_slice(values);
            self.population.mask_row(&mut scratch);
            scratch.as_slice()
        };
        for s in 0..self.conns.len() {
            let range = self.range(s);
            if range.is_empty() {
                continue;
            }
            let op = ServerOp::ObserveRow {
                start: NodeId(range.start),
                values: values[range].to_vec(),
            };
            self.command(s, op);
        }
        for (i, &v) in values.iter().enumerate() {
            if self.mirror.value(i) != v {
                self.mirror.set_value(i, v);
            }
        }
        self.masked_row = scratch;
        self.meter.record_time_step();
    }

    fn advance_time_sparse(&mut self, changes: &[(NodeId, Value)]) {
        // Route each change to its owning shard; one frame per shard that
        // has any. Per-shard order preserves the caller's order, so
        // duplicate entries still resolve last-wins like the baseline.
        // Changes naming dead slots are masked to 0, not dropped, so the
        // value path stays uniform across engines.
        let mut routed: Vec<Vec<(NodeId, Value)>> = vec![Vec::new(); self.conns.len()];
        for &(node, v) in changes {
            let v = if self.population.is_live(node) { v } else { 0 };
            routed[self.owner(node)].push((node, v));
            self.mirror.set_value(node.index(), v);
        }
        for (s, changes) in routed.into_iter().enumerate() {
            if !changes.is_empty() {
                self.command(s, ServerOp::ObserveSparse { changes });
            }
        }
        self.meter.record_time_step();
    }

    fn apply_membership(&mut self, events: &[MembershipEvent]) {
        for &event in events {
            let node = event.node();
            let owner = self.owner(node);
            match event {
                MembershipEvent::Leave(_) => {
                    self.population.apply(event);
                    // The leaver's stream ends: the client node observes 0
                    // (possibly tripping its filter), and the mirror tracks
                    // the delivered value. Free, like any observation.
                    self.command(
                        owner,
                        ServerOp::Membership {
                            events: vec![event],
                        },
                    );
                    if self.mirror.value(node.index()) != 0 {
                        self.mirror.set_value(node.index(), 0);
                    }
                }
                MembershipEvent::Join(_) => {
                    self.population.apply(event);
                    let i = node.index();
                    let group = self.mirror.group(i);
                    let filter = self.mirror.filter(i);
                    // The client reseeds the slot from (master seed, id,
                    // generation) and resets it; the mirror does the same.
                    self.command(
                        owner,
                        ServerOp::Membership {
                            events: vec![event],
                        },
                    );
                    self.mirror.reset_node(i);
                    // Bring the joiner up to date: replay the slot's current
                    // group and filter under the Recovery label (2 unicasts),
                    // mirroring the crash-rejoin replay of FaultyTransport.
                    self.meter.push_label(ProtocolLabel::Recovery);
                    self.assign_group(node, group);
                    self.assign_filter(node, filter);
                    self.meter.pop_label();
                }
            }
        }
    }

    fn broadcast_params(&mut self, params: FilterParams) {
        self.meter.record(MessageKind::Broadcast);
        self.broadcast_command(ServerMessage::BroadcastParams(params));
        self.params = Some(params);
        for i in 0..self.mirror.len() {
            let f = filter_for(self.mirror.group(i), &params);
            self.mirror.set_filter(i, f);
        }
    }

    fn assign_group(&mut self, node: NodeId, group: NodeGroup) {
        self.meter.record(MessageKind::DownstreamUnicast);
        let owner = self.owner(node);
        self.command(
            owner,
            ServerOp::Unicast {
                node,
                msg: ServerMessage::AssignGroup(group),
            },
        );
        self.mirror_group(node.index(), group);
    }

    fn broadcast_group(&mut self, group: NodeGroup) {
        self.meter.record(MessageKind::Broadcast);
        self.broadcast_command(ServerMessage::BroadcastGroup(group));
        for i in 0..self.mirror.len() {
            self.mirror_group(i, group);
        }
    }

    fn assign_filter(&mut self, node: NodeId, filter: Filter) {
        self.meter.record(MessageKind::DownstreamUnicast);
        let owner = self.owner(node);
        self.command(
            owner,
            ServerOp::Unicast {
                node,
                msg: ServerMessage::AssignFilter(filter),
            },
        );
        self.mirror.set_filter(node.index(), filter);
    }

    fn assign_query_filter(&mut self, query: QueryId, node: NodeId, filter: Filter) {
        self.meter.record(MessageKind::DownstreamUnicast);
        let owner = self.owner(node);
        // Put the QueryId on the wire only for peers that negotiated wire v4;
        // older peers get the plain assignment, which is node-side identical
        // (the tag is pure attribution). Either way the cost, the mirror and
        // the node's state transition match the in-process engines exactly.
        let speaks_v4 = self.conns[owner]
            .as_ref()
            .is_some_and(|conn| conn.wire_version >= QUERY_WIRE_VERSION);
        let msg = if speaks_v4 {
            ServerMessage::AssignQueryFilter { query, filter }
        } else {
            ServerMessage::AssignFilter(filter)
        };
        self.command(owner, ServerOp::Unicast { node, msg });
        self.mirror.set_filter(node.index(), filter);
    }

    fn probe(&mut self, node: NodeId) -> Value {
        self.meter.record(MessageKind::DownstreamUnicast);
        let owner = self.owner(node);
        let policy = self.policy;
        let conn = self.conns[owner]
            .as_mut()
            .unwrap_or_else(|| panic!("remote transport: shard {owner} is disconnected"));
        let seq = conn.send_query(vec![ServerOp::Unicast {
            node,
            msg: ServerMessage::Probe,
        }]);
        let replies = conn.recv_replies(seq, &mut self.meter, policy.as_ref());
        self.meter.record(MessageKind::Upstream);
        match replies.as_slice() {
            [NodeMessage::ValueReport { value, .. }] => *value,
            other => panic!("probe must be answered with one value report, got {other:?}"),
        }
    }

    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    ) {
        self.meter.record_round();
        let msg = ServerMessage::ExistenceRound {
            round,
            population,
            predicate,
        };
        // Send the round to every occupied shard first, then collect the
        // replies in shard order: the shards flip their coins concurrently
        // and the ordered collection restores the global id order. Runs on
        // every round of every violation check, so the shard walks stay
        // allocation-free (beyond the frame encodings themselves).
        for s in 0..self.conns.len() {
            if self.range(s).is_empty() {
                continue;
            }
            self.conn(s).send_query(vec![ServerOp::Broadcast { msg }]);
        }
        replies.clear();
        let policy = self.policy;
        for s in 0..self.conns.len() {
            if self.range(s).is_empty() {
                continue;
            }
            let conn = self.conns[s]
                .as_mut()
                .unwrap_or_else(|| panic!("remote transport: shard {s} is disconnected"));
            // Nothing interleaved since the send above, so the shard's round
            // query is the last sequence number the connection issued.
            let seq = conn.next_seq - 1;
            let shard_replies = conn.recv_replies(seq, &mut self.meter, policy.as_ref());
            replies.extend(shard_replies);
        }
        self.meter
            .record_many(MessageKind::Upstream, replies.len() as u64);
    }

    fn end_existence_run(&mut self) {
        self.meter.record(MessageKind::Broadcast);
        self.broadcast_command(ServerMessage::EndExistenceRun);
    }

    fn meter(&mut self) -> &mut CostMeter {
        &mut self.meter
    }

    fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    fn peek_value(&self, node: NodeId) -> Value {
        self.mirror.value(node.index())
    }

    fn peek_filter(&self, node: NodeId) -> Filter {
        self.mirror.filter(node.index())
    }

    fn peek_group(&self, node: NodeId) -> NodeGroup {
        self.mirror.group(node.index())
    }

    fn peek_filters_into(&self, out: &mut Vec<Filter>) {
        out.clear();
        out.extend(self.mirror.filters().map(|(_, f)| f));
    }

    fn peek_values_into(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend_from_slice(self.mirror.values());
    }
}

impl Drop for RemoteEngine {
    fn drop(&mut self) {
        for conn in self.conns.iter_mut().flatten() {
            // Best effort: a client that already died closed its socket, and
            // the join below reaps it either way.
            let _ = write_frame_versioned(&mut conn.writer, &Frame::Shutdown, conn.wire_version);
        }
        for handle in self.handles.drain(..).flatten() {
            let _ = handle.join();
        }
    }
}

/// Accepts one client connection and completes its `Join` handshake.
///
/// Negotiates the connection's wire version — the minimum of the server's
/// [`WIRE_VERSION`] and the maximum the client advertised in its `Join`
/// frame — so a legacy (version 2) client interoperates without CRC
/// trailers. Arms the policy's base deadline when a retry policy is set,
/// and returns the connection together with the shard index the client
/// claimed (the caller slots or verifies it).
fn accept_shard(listener: &TcpListener, policy: Option<&RetryPolicy>) -> (Conn, u32) {
    let stream = match policy {
        None => {
            listener
                .accept()
                .expect("remote transport: accept failed")
                .0
        }
        Some(policy) => accept_with_policy(listener, policy),
    };
    stream
        .set_nodelay(true)
        .expect("remote transport: cannot set TCP_NODELAY");
    let mut reader = stream.try_clone().expect("remote transport: clone stream");
    let (frame, bytes) = read_frame(&mut reader).expect("remote transport: join handshake failed");
    let Frame::Join { shard, max_version } = frame else {
        panic!("remote transport: expected a join frame, got {frame:?}");
    };
    let mut conn = Conn {
        writer: BufWriter::new(stream),
        reader,
        acc: FrameAccumulator::new(),
        wire_version: WIRE_VERSION.min(max_version),
        next_seq: 1,
        armed_deadline: None,
        stats: TransportStats {
            frames_received: 1,
            bytes_received: bytes as u64,
            ..TransportStats::default()
        },
    };
    if let Some(policy) = policy {
        conn.arm_deadline(policy.deadline(0));
    }
    (conn, shard)
}

/// Accepts a connection under the retry policy's deadline schedule instead of
/// blocking forever: the listener goes non-blocking, attempt `i` waits the
/// policy's deadline for `i` before polling again, and once `max_attempts`
/// deadlines have elapsed with no client the peer is declared dead — the
/// attempt budget [`RemoteEngine::reconnect_shard`] documents. The listener
/// is restored to blocking mode on success (later accepts start fresh).
fn accept_with_policy(listener: &TcpListener, policy: &RetryPolicy) -> TcpStream {
    listener
        .set_nonblocking(true)
        .expect("remote transport: cannot make listener non-blocking");
    let mut attempts = 0u32;
    let stream = loop {
        match listener.accept() {
            Ok((stream, _)) => break stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                assert!(
                    attempts < policy.max_attempts,
                    "remote transport: no shard connected within {} accept deadlines — client dead",
                    policy.max_attempts
                );
                std::thread::sleep(policy.deadline(attempts));
                attempts += 1;
            }
            Err(e) => panic!("remote transport: accept failed: {e}"),
        }
    };
    listener
        .set_nonblocking(false)
        .expect("remote transport: cannot restore blocking listener");
    // Accepted sockets do not inherit the listener's non-blocking flag on
    // the platforms we run on, but the reply deadlines depend on it — pin it.
    stream
        .set_nonblocking(false)
        .expect("remote transport: cannot make stream blocking");
    stream
}

/// Body of one shard-client thread: connect, join, then serve batches until
/// shutdown.
///
/// The client owns the [`SimNode`] state machines of global ids `lo..hi` and
/// is driven *only* by decoded frames — it shares no memory with the server.
/// Replies accumulate in ascending node-id order because every op iterates
/// the shard's nodes in ascending order.
///
/// The `Join` frame itself is framed at [`LEGACY_WIRE_VERSION`] (so any
/// server can read it) and advertises [`WIRE_VERSION`] as the client's
/// maximum; the client then mirrors whatever version the server's frames
/// arrive in, completing the negotiation from its side without extra
/// round-trips.
///
/// `gens` carries the membership generation of every local slot (all zeros
/// for an initial connection; the population's current generations for a
/// reconnect), and [`ServerOp::Membership`] events advance them: a `Join`
/// reseeds the slot via [`SimNode::rejoin_generation`] and a `Leave`
/// collapses its stream to a 0 observation — the same transitions every
/// in-process engine makes, so the RNG streams stay aligned bit for bit.
///
/// With `faults` set to `(seed, drop_permille)`, the client simulates a
/// lossy upstream link: each *first* transmission of a reply frame is
/// dropped with the given probability (from a per-shard ChaCha8 stream), and
/// the retained copy is re-sent — always, so retries converge — when the
/// server polls for it.
fn run_shard_client(
    addr: SocketAddr,
    shard: u32,
    lo: usize,
    hi: usize,
    master_seed: u64,
    faults: Option<(u64, u32)>,
    mut gens: Vec<u32>,
) {
    let stream = TcpStream::connect(addr).expect("shard client: cannot connect to server");
    stream
        .set_nodelay(true)
        .expect("shard client: cannot set TCP_NODELAY");
    let mut reader = BufReader::new(stream.try_clone().expect("shard client: clone stream"));
    let mut writer = BufWriter::new(stream);
    write_frame_versioned(
        &mut writer,
        &Frame::Join {
            shard,
            max_version: WIRE_VERSION,
        },
        LEGACY_WIRE_VERSION,
    )
    .expect("shard client: join handshake failed");
    // Every received frame states the server's negotiated version and the
    // client mirrors it, so the first read settles this before any reply.
    let mut server_version;

    let mut drop_rng = faults.map(|(seed, _)| {
        // Golden-ratio mix so shard streams are disjoint even for small seeds.
        ChaCha8Rng::seed_from_u64(
            seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(shard) + 1),
        )
    });
    let drop_permille = faults.map_or(0, |(_, p)| p.min(1000));
    assert_eq!(gens.len(), hi - lo, "one generation per local slot");
    let mut nodes: Vec<SimNode> = (lo..hi)
        .map(|i| {
            let mut node = SimNode::new(NodeId(i), master_seed);
            let gen = gens[i - lo];
            if gen > 0 {
                node.rejoin_generation(master_seed, gen);
            }
            node
        })
        .collect();
    let mut replies: Vec<NodeMessage> = Vec::new();
    // The last reply produced, kept for answering polls (the two reply
    // buffers ping-pong so one pair of allocations serves the connection).
    let mut last: (u64, Vec<NodeMessage>) = (0, Vec::new());
    loop {
        let frame = match read_frame_versioned(&mut reader) {
            Ok((frame, _, version)) => {
                server_version = version;
                frame
            }
            // The server dropped without an orderly shutdown (e.g. a test
            // panicked): exit quietly, the Drop impl reaps the thread.
            Err(WireError::Io(_)) => return,
            Err(e) => panic!("shard client {shard}: corrupt frame: {e}"),
        };
        match frame {
            Frame::Batch {
                wants_reply,
                seq,
                ops,
            } => {
                replies.clear();
                for op in ops {
                    match op {
                        ServerOp::Membership { events } => {
                            for event in events {
                                let local = event.node().index() - lo;
                                match event {
                                    MembershipEvent::Join(_) => {
                                        gens[local] += 1;
                                        nodes[local].rejoin_generation(master_seed, gens[local]);
                                    }
                                    MembershipEvent::Leave(_) => nodes[local].observe(0),
                                }
                            }
                        }
                        op => apply_op(&mut nodes, lo, op, &mut replies),
                    }
                }
                if wants_reply {
                    // The drop coin applies to the first transmission only;
                    // poll answers always go out, so one poll recovers any
                    // lost frame.
                    let lost = drop_permille > 0
                        && drop_rng
                            .as_mut()
                            .is_some_and(|rng| rng.gen_ratio(drop_permille, 1000));
                    let frame = Frame::Replies {
                        seq,
                        replies: std::mem::take(&mut replies),
                    };
                    if !lost {
                        write_frame_versioned(&mut writer, &frame, server_version)
                            .expect("shard client: cannot send replies");
                    }
                    let Frame::Replies { seq, replies: sent } = frame else {
                        unreachable!("frame constructed as Replies above")
                    };
                    replies = std::mem::replace(&mut last, (seq, sent)).1;
                }
            }
            Frame::Poll { seq } => {
                // TCP ordering guarantees the polled batch arrived before
                // the poll, so the retained reply must be the one asked for.
                assert_eq!(
                    last.0, seq,
                    "shard client {shard}: poll for a reply never produced"
                );
                let answer = Frame::Replies {
                    seq,
                    replies: last.1.clone(),
                };
                write_frame_versioned(&mut writer, &answer, server_version)
                    .expect("shard client: cannot answer poll");
            }
            Frame::Shutdown => {
                // Orderly goodbye: name the shard so the disconnect path can
                // tell this farewell from a stale connection's. Best effort —
                // on a plain engine drop nobody is listening any more.
                let _ = write_frame_versioned(&mut writer, &Frame::Leave { shard }, server_version);
                return;
            }
            other => panic!("shard client {shard}: unexpected frame {other:?}"),
        }
    }
}

/// Applies one decoded batch operation to a shard's nodes, appending any
/// upstream messages to `replies` in ascending node-id order.
fn apply_op(nodes: &mut [SimNode], lo: usize, op: ServerOp, replies: &mut Vec<NodeMessage>) {
    match op {
        ServerOp::ObserveRow { start, values } => {
            let base = start.index() - lo;
            for (j, v) in values.into_iter().enumerate() {
                nodes[base + j].observe(v);
            }
        }
        ServerOp::ObserveSparse { changes } => {
            for (node, v) in changes {
                nodes[node.index() - lo].observe(v);
            }
        }
        ServerOp::Unicast { node, msg } => {
            if let Some(reply) = nodes[node.index() - lo].handle(&msg) {
                replies.push(reply);
            }
        }
        ServerOp::Broadcast { msg } => {
            for node in nodes.iter_mut() {
                if let Some(reply) = node.handle(&msg) {
                    replies.push(reply);
                }
            }
        }
        // Membership needs the generation table and is handled inline by the
        // client loop before ops reach this function.
        ServerOp::Membership { .. } => {
            unreachable!("membership ops are applied by the client loop")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicEngine;

    #[test]
    fn basic_flow_matches_baseline_semantics() {
        let mut net = RemoteEngine::with_shards(5, 1, 2);
        net.advance_time(&[10, 20, 30, 40, 50]);
        net.broadcast_params(FilterParams::Separator { lo: 25, hi: 25 });
        net.assign_filter(NodeId(0), Filter::at_least(40));
        net.assign_group(NodeId(1), NodeGroup::Upper);
        assert_eq!(net.probe(NodeId(4)), 50);
        let stats = net.stats();
        assert_eq!(stats.messages_of_kind(MessageKind::Broadcast), 1);
        assert_eq!(stats.messages_of_kind(MessageKind::DownstreamUnicast), 3);
        assert_eq!(stats.messages_of_kind(MessageKind::Upstream), 1);
        assert_eq!(stats.time_steps, 1);
        assert_eq!(net.peek_filter(NodeId(1)), Filter::at_least(25));
        assert_eq!(net.peek_filter(NodeId(2)), Filter::at_most(25));
        assert_eq!(net.peek_group(NodeId(1)), NodeGroup::Upper);
        assert_eq!(net.peek_values(), vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn matches_baseline_on_a_scripted_run() {
        let script = |net: &mut dyn Network| {
            net.advance_time(&[3, 1, 4, 1, 5, 9, 2, 6]);
            net.assign_group(NodeId(5), NodeGroup::Upper);
            net.broadcast_params(FilterParams::Separator { lo: 5, hi: 5 });
            let mut found = Vec::new();
            for round in 0..=3 {
                let r = net.existence_round(round, 8, ExistencePredicate::PendingViolation);
                if !r.is_empty() {
                    found = r;
                    net.end_existence_run();
                    break;
                }
            }
            net.advance_time_sparse(&[(NodeId(7), 4), (NodeId(0), 9)]);
            let max = net.existence_round(10, 8, ExistencePredicate::AtLeast(9));
            (found, max, net.stats())
        };
        for shards in [1, 3, 8] {
            let mut base = DeterministicEngine::new(8, 1234);
            let mut remote = RemoteEngine::with_shards(8, 1234, shards);
            let (f_base, m_base, s_base) = script(&mut base);
            let (f_rem, m_rem, s_rem) = script(&mut remote);
            assert_eq!(
                f_base, f_rem,
                "violation replies diverge at {shards} shards"
            );
            assert_eq!(
                m_base, m_rem,
                "threshold replies diverge at {shards} shards"
            );
            assert_eq!(s_base, s_rem, "stats diverge at {shards} shards");
            assert_eq!(base.peek_filters(), remote.peek_filters());
            assert_eq!(base.peek_values(), remote.peek_values());
            for i in 0..8 {
                assert_eq!(base.peek_group(NodeId(i)), remote.peek_group(NodeId(i)));
            }
        }
    }

    #[test]
    fn transport_counters_track_wire_activity() {
        let mut net = RemoteEngine::with_shards(4, 9, 2);
        let after_handshake = net.transport_stats();
        assert_eq!(after_handshake.frames_received, 2, "one join per shard");
        net.advance_time(&[1, 2, 3, 4]);
        let after_row = net.transport_stats();
        assert_eq!(after_row.frames_sent, 2, "one observation frame per shard");
        assert!(after_row.bytes_sent > 0);
        // A probe costs one frame out and one reply frame back on one conn.
        net.probe(NodeId(0));
        let after_probe = net.transport_stats();
        assert_eq!(after_probe.frames_sent, after_row.frames_sent + 1);
        assert_eq!(
            after_probe.frames_received,
            after_handshake.frames_received + 1
        );
    }

    #[test]
    fn more_shards_than_nodes_leaves_surplus_connections_idle() {
        let mut net = RemoteEngine::with_shards(2, 3, 5);
        assert_eq!(net.shard_count(), 5);
        net.advance_time(&[7, 8]);
        let replies = net.existence_round(10, 2, ExistencePredicate::GreaterThan(0));
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].sender(), NodeId(0));
        assert_eq!(replies[1].sender(), NodeId(1));
    }

    #[test]
    fn silent_rounds_cost_model_nothing_but_cross_the_wire() {
        let mut net = RemoteEngine::with_shards(8, 5, 2);
        net.advance_time(&[10; 8]);
        let before = net.stats().total_messages();
        let wire_before = net.transport_stats().frames();
        let replies = net.existence_round(10, 8, ExistencePredicate::GreaterThan(100));
        assert!(replies.is_empty());
        assert_eq!(
            net.stats().total_messages(),
            before,
            "silent round is free in the model"
        );
        assert!(
            net.transport_stats().frames() > wire_before,
            "but the round schedule genuinely crossed the socket"
        );
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let net = RemoteEngine::with_shards(3, 1, 3);
        drop(net); // must not hang or panic
    }

    #[test]
    fn membership_churn_matches_baseline_bit_for_bit() {
        let script = |net: &mut dyn Network| {
            net.advance_time(&[10, 20, 30, 40, 50, 60]);
            net.broadcast_params(FilterParams::Separator { lo: 35, hi: 35 });
            net.assign_group(NodeId(5), NodeGroup::Upper);
            net.apply_membership(&[
                MembershipEvent::Leave(NodeId(5)),
                MembershipEvent::Leave(NodeId(1)),
            ]);
            net.advance_time(&[11, 21, 31, 41, 51, 61]); // dead slots masked to 0
            net.apply_membership(&[MembershipEvent::Join(NodeId(5))]);
            net.advance_time_sparse(&[(NodeId(5), 62), (NodeId(1), 99)]);
            let mut replies = Vec::new();
            for round in 0..4 {
                replies.extend(net.existence_round(round, 6, ExistencePredicate::AtLeast(30)));
            }
            net.end_existence_run();
            let p = net.probe(NodeId(5));
            (replies, p, net.stats())
        };
        for shards in [1, 2, 3] {
            let mut base = DeterministicEngine::new(6, 42);
            let mut remote = RemoteEngine::with_shards(6, 42, shards);
            let (r_base, p_base, s_base) = script(&mut base);
            let (r_rem, p_rem, s_rem) = script(&mut remote);
            assert_eq!(r_base, r_rem, "replies diverge at {shards} shards");
            assert_eq!(p_base, p_rem, "probe diverges at {shards} shards");
            assert_eq!(s_base, s_rem, "stats diverge at {shards} shards");
            assert_eq!(base.peek_values(), remote.peek_values());
            assert_eq!(base.peek_filters(), remote.peek_filters());
            for i in 0..6 {
                assert_eq!(base.peek_group(NodeId(i)), remote.peek_group(NodeId(i)));
            }
            // The dead slot's later traffic was masked, the joiner's was not.
            assert_eq!(remote.peek_value(NodeId(1)), 0);
            assert_eq!(remote.peek_value(NodeId(5)), 62);
        }
    }

    #[test]
    fn reconnect_lifecycle_is_transport_only_and_bit_identical() {
        // Shard 1 of 2 owns nodes 3..6; empty it, bounce its connection,
        // refill it, and the run must match a baseline that only saw the
        // membership events (the transport churn is invisible to the model).
        let pre = |net: &mut dyn Network| {
            net.advance_time(&[5, 6, 7, 8, 9, 10]);
            net.broadcast_params(FilterParams::Separator { lo: 7, hi: 7 });
            net.apply_membership(&[
                MembershipEvent::Leave(NodeId(3)),
                MembershipEvent::Leave(NodeId(4)),
                MembershipEvent::Leave(NodeId(5)),
            ]);
        };
        let post = |net: &mut dyn Network| {
            net.apply_membership(&[
                MembershipEvent::Join(NodeId(3)),
                MembershipEvent::Join(NodeId(4)),
                MembershipEvent::Join(NodeId(5)),
            ]);
            net.advance_time(&[1, 2, 3, 40, 50, 60]);
            let mut out = Vec::new();
            for round in 0..3 {
                out.extend(net.existence_round(round, 6, ExistencePredicate::AtLeast(10)));
            }
            let p = net.probe(NodeId(4));
            (out, p, net.stats())
        };
        let mut base = DeterministicEngine::new(6, 7);
        let mut remote = RemoteEngine::with_shards(6, 7, 2);
        pre(&mut base);
        pre(&mut remote);
        remote.disconnect_shard(1);
        remote.reconnect_shard(1);
        let (o_base, p_base, s_base) = post(&mut base);
        let (o_rem, p_rem, s_rem) = post(&mut remote);
        assert_eq!(o_base, o_rem, "replies diverge across a reconnect");
        assert_eq!(p_base, p_rem);
        assert_eq!(s_base, s_rem, "a reconnect must not charge the model");
        assert_eq!(base.peek_values(), remote.peek_values());
        assert_eq!(base.peek_filters(), remote.peek_filters());
        let bounced = remote.shard_transport_stats(1);
        assert_eq!(bounced.reconnects, 1, "the bounce is visible on the wire");
        assert_eq!(remote.shard_transport_stats(0).reconnects, 0);
        assert_eq!(remote.transport_stats().reconnects, 1);
        assert!(
            bounced.frames() > 0,
            "retired counters must survive the old connection"
        );
    }

    #[test]
    fn reconnect_resets_the_armed_deadline_to_the_policy_base() {
        // A policy-armed engine on a lossless transport: deadlines are set,
        // no frame is ever dropped, so every read succeeds on attempt 0.
        let policy = RetryPolicy::backoff_from(Duration::from_millis(250));
        let mut net = RemoteEngine::with_fault_policy(6, 7, 2, &FaultSpec::none(), policy);
        assert_eq!(net.armed_deadline(0), Some(policy.deadline(0)));
        assert_eq!(net.armed_deadline(1), Some(policy.deadline(0)));
        net.advance_time(&[5, 6, 7, 8, 9, 10]);
        net.apply_membership(&[
            MembershipEvent::Leave(NodeId(3)),
            MembershipEvent::Leave(NodeId(4)),
            MembershipEvent::Leave(NodeId(5)),
        ]);
        net.disconnect_shard(1);
        assert_eq!(net.armed_deadline(1), None, "no socket while disconnected");
        net.reconnect_shard(1);
        // The replacement connection starts the schedule over at the base
        // deadline — a successful reconnect is a success, not another retry.
        assert_eq!(net.armed_deadline(1), Some(policy.deadline(0)));
        assert_eq!(net.armed_deadline(0), Some(policy.deadline(0)));
        // Blocking-mode engines (no policy) never arm a deadline at all.
        let blocking = RemoteEngine::with_shards(4, 7, 2);
        assert_eq!(blocking.armed_deadline(0), None);
    }

    #[test]
    fn accept_honors_the_retry_policy_budget() {
        // A client that connects only after a few deadlines have elapsed is
        // still accepted within the policy budget.
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let policy = RetryPolicy::new(Duration::from_millis(5), 2, Duration::from_millis(40), 32);
        let client = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            let stream = TcpStream::connect(addr).expect("connect");
            // Keep the socket open until the server side has accepted it.
            std::thread::sleep(Duration::from_millis(100));
            drop(stream);
        });
        let _accepted = accept_with_policy(&listener, &policy);
        client.join().expect("client thread");
        // With no client at all, the accept must exhaust `max_attempts`
        // deadlines and give up instead of blocking forever.
        let lonely = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let tiny = RetryPolicy::new(Duration::from_millis(1), 1, Duration::from_millis(1), 3);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            accept_with_policy(&lonely, &tiny)
        }));
        assert!(outcome.is_err(), "an absent client must exhaust the budget");
    }

    #[test]
    #[should_panic(expected = "requires slot 3 to have left")]
    fn disconnecting_a_live_shard_is_refused() {
        let mut net = RemoteEngine::with_shards(6, 7, 2);
        net.disconnect_shard(1);
    }

    #[test]
    fn modern_peers_negotiate_the_checksummed_wire_version() {
        let net = RemoteEngine::with_shards(2, 1, 1);
        let conn = net.conns[0].as_ref().expect("shard 0 connected");
        assert_eq!(conn.wire_version, WIRE_VERSION);
    }

    #[test]
    fn legacy_v2_server_interoperates_with_the_client() {
        use topk_wire::read_frame_versioned;
        // This test plays a version-2 server end to end: the client's Join
        // must arrive legacy-framed (readable before negotiation), and every
        // client frame after our v2 answer must mirror version 2.
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client =
            std::thread::spawn(move || run_shard_client(addr, 0, 0, 2, 99, None, vec![0; 2]));
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = stream.try_clone().expect("clone");
        let mut writer = BufWriter::new(stream);
        let (join, _, version) = read_frame_versioned(&mut reader).expect("join");
        assert_eq!(version, LEGACY_WIRE_VERSION, "join must be legacy-framed");
        assert_eq!(
            join,
            Frame::Join {
                shard: 0,
                max_version: WIRE_VERSION
            }
        );
        write_frame_versioned(
            &mut writer,
            &Frame::Batch {
                wants_reply: true,
                seq: 1,
                ops: vec![
                    ServerOp::ObserveRow {
                        start: NodeId(0),
                        values: vec![4, 9],
                    },
                    ServerOp::Unicast {
                        node: NodeId(1),
                        msg: ServerMessage::Probe,
                    },
                ],
            },
            LEGACY_WIRE_VERSION,
        )
        .expect("batch");
        let (reply, _, version) = read_frame_versioned(&mut reader).expect("reply");
        assert_eq!(version, LEGACY_WIRE_VERSION, "client must mirror v2");
        assert_eq!(
            reply,
            Frame::Replies {
                seq: 1,
                replies: vec![NodeMessage::ValueReport {
                    node: NodeId(1),
                    value: 9
                }]
            }
        );
        write_frame_versioned(&mut writer, &Frame::Shutdown, LEGACY_WIRE_VERSION).expect("bye");
        let (leave, _, _) = read_frame_versioned(&mut reader).expect("leave");
        assert_eq!(leave, Frame::Leave { shard: 0 });
        client.join().expect("client exits cleanly");
    }

    #[test]
    fn lossy_replies_degrade_to_polls_and_converge() {
        let spec = FaultSpec::drop_upstream(0xBEEF, 800);
        let script = |net: &mut RemoteEngine| {
            let mut out = Vec::new();
            net.advance_time(&[10, 20, 30, 40, 50, 60]);
            for round in 0..4 {
                out.push(net.existence_round(round, 6, ExistencePredicate::AtLeast(35)));
            }
            out.push(vec![NodeMessage::ValueReport {
                node: NodeId(0),
                value: net.probe(NodeId(3)),
            }]);
            out
        };
        let mut clean = RemoteEngine::with_shards(6, 77, 2);
        let mut lossy = RemoteEngine::with_fault_spec(6, 77, 2, &spec, Duration::from_millis(20));
        let clean_out = script(&mut clean);
        let lossy_out = script(&mut lossy);
        assert_eq!(clean_out, lossy_out, "polls must recover every lost reply");
        assert!(
            lossy.polls_sent() > 0,
            "an 80% drop rate over 9 reply frames cannot go unnoticed"
        );
        // Recovery traffic is separable: strip it and the clean run remains.
        let mut lossy_stats = lossy.stats();
        let recovery = lossy_stats.messages_of_label(ProtocolLabel::Recovery);
        assert_eq!(recovery, lossy.polls_sent(), "one recovery unit per poll");
        lossy_stats
            .by_label_kind
            .retain(|(label, _), _| *label != ProtocolLabel::Recovery);
        assert_eq!(lossy_stats, clean.stats());
    }
}
