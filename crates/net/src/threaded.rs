//! Channel-based, multi-threaded simulation engine.
//!
//! [`ThreadedEngine`] hosts the node population on a fixed pool of *shard
//! threads*: each thread owns a contiguous range of [`SimNode`]s (the same
//! node state machine the deterministic engine drives) and processes commands
//! for its whole range. Every interaction crosses a `crossbeam` channel: the
//! server pushes [`ServerMessage`]s (wrapped in the private `ShardCommand`
//! envelope) into per-shard command channels, and shards answer over a shared
//! reply channel. Each command is acknowledged with exactly one `Ack` per
//! involved shard (possibly carrying no replies), which is how the engine
//! realises the synchronous rounds of the model on top of asynchronous
//! channels. The acknowledgement itself is *not* a model message and is never
//! charged.
//!
//! Each shard iterates its nodes in ascending id order, so an `Ack`'s reply
//! buffer is id-sorted; the server slots acknowledgements by their shard index
//! and concatenates the buffers in shard order, which — shards being
//! contiguous ascending id ranges — reproduces the global node-id reply order
//! of the deterministic engine without a sort. (The engine's previous design
//! spawned one OS thread per node and re-sorted the ack stream; hosting nodes
//! on shards is what lets it scale past a few thousand nodes.)
//!
//! The node logic and the per-node RNG seeding are identical to the other
//! engines', so message counts agree run for run; integration tests assert
//! this.

use crate::network::Network;
use crate::node::SimNode;
use crate::partition;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::rule::filter_for;

/// Command sent from the engine to a shard thread.
#[derive(Debug, Clone)]
enum ShardCommand {
    /// Deliver the next observation row; the shard reads its own id range
    /// (free of communication cost).
    Observe(Arc<Vec<Value>>),
    /// Deliver observations to the listed nodes of this shard only
    /// (`(local index, value)` pairs, already routed by the server).
    ObserveSparse(Vec<(usize, Value)>),
    /// Deliver a server message to every node of the shard (charged by the
    /// caller as one broadcast).
    Server(ServerMessage),
    /// Deliver a server message to a single node (`local index`).
    ServerOne(usize, ServerMessage),
    /// Reset node `local index` as the generation-`u32` joiner of its slot
    /// (state reset + RNG reseed; see `SimNode::rejoin_generation`).
    Rejoin(usize, u32),
    /// Terminate the shard thread.
    Shutdown,
}

/// Acknowledgement sent from a shard thread back to the engine: the shard's
/// index (used to merge replies in shard = node-id order) and the replies its
/// nodes produced, in ascending node-id order.
#[derive(Debug)]
struct Ack {
    shard: usize,
    replies: Vec<NodeMessage>,
}

/// Multi-threaded engine (see module documentation).
pub struct ThreadedEngine {
    senders: Vec<Sender<ShardCommand>>,
    reply_rx: Receiver<Ack>,
    handles: Vec<JoinHandle<()>>,
    /// Shard boundaries: shard `s` hosts node ids `bounds[s]..bounds[s + 1]`.
    bounds: Vec<usize>,
    n: usize,
    meter: CostMeter,
    // Server-side mirrors used only by the free inspection API. They are updated
    // from the very messages the server sends, so they can never disagree with
    // the node-side state (filters are a pure function of group + params).
    mirror_values: Vec<Value>,
    mirror_groups: Vec<NodeGroup>,
    mirror_filters: Vec<Filter>,
    mirror_params: Option<FilterParams>,
    /// Scratch: per-shard reply slots for merging acknowledgements.
    slots: Vec<Vec<NodeMessage>>,
    population: Population,
}

impl ThreadedEngine {
    /// Spawns the default shard-thread pool — `min(n, available CPUs)`
    /// threads — hosting `n` nodes whose RNGs are derived from `master_seed`.
    ///
    /// ```
    /// use topk_net::{Network, ThreadedEngine};
    /// use topk_model::NodeId;
    ///
    /// let mut net = ThreadedEngine::new(4, 11);
    /// net.advance_time(&[1, 2, 3, 4]);
    /// assert_eq!(net.probe(NodeId(3)), 4); // a real channel round-trip
    /// ```
    pub fn new(n: usize, master_seed: u64) -> ThreadedEngine {
        let default_workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ThreadedEngine::with_workers(n, master_seed, default_workers)
    }

    /// [`ThreadedEngine::new`] with an explicit shard-thread count (clamped to
    /// `1..=n` so no thread is idle by construction).
    pub fn with_workers(n: usize, master_seed: u64, workers: usize) -> ThreadedEngine {
        let workers = workers.clamp(1, n.max(1));
        let bounds = partition::shard_bounds(n, workers);
        let (reply_tx, reply_rx) = unbounded::<Ack>();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for s in 0..workers {
            let (tx, rx) = unbounded::<ShardCommand>();
            let reply_tx = reply_tx.clone();
            let offset = bounds[s];
            let mut nodes: Vec<SimNode> = (offset..bounds[s + 1])
                .map(|id| SimNode::new(NodeId(id), master_seed))
                .collect();
            let handle = std::thread::Builder::new()
                .name(format!("topk-nodes-{s}"))
                .spawn(move || loop {
                    let mut replies = Vec::new();
                    match rx.recv() {
                        Ok(ShardCommand::Observe(row)) => {
                            for (i, node) in nodes.iter_mut().enumerate() {
                                node.observe(row[offset + i]);
                            }
                        }
                        Ok(ShardCommand::ObserveSparse(changes)) => {
                            for (i, v) in changes {
                                nodes[i].observe(v);
                            }
                        }
                        Ok(ShardCommand::Server(msg)) => {
                            // Ascending id order keeps the ack buffer sorted.
                            replies.extend(nodes.iter_mut().filter_map(|n| n.handle(&msg)));
                        }
                        Ok(ShardCommand::ServerOne(i, msg)) => {
                            replies.extend(nodes[i].handle(&msg));
                        }
                        Ok(ShardCommand::Rejoin(i, generation)) => {
                            nodes[i].rejoin_generation(master_seed, generation);
                        }
                        Ok(ShardCommand::Shutdown) | Err(_) => break,
                    }
                    if reply_tx.send(Ack { shard: s, replies }).is_err() {
                        break;
                    }
                })
                .expect("failed to spawn shard thread");
            senders.push(tx);
            handles.push(handle);
        }
        ThreadedEngine {
            senders,
            reply_rx,
            handles,
            bounds,
            n,
            meter: CostMeter::new(),
            mirror_values: vec![0; n],
            mirror_groups: vec![NodeGroup::Lower; n],
            mirror_filters: vec![Filter::FULL; n],
            mirror_params: None,
            slots: (0..workers).map(|_| Vec::new()).collect(),
            population: Population::new(n),
        }
    }

    /// Number of shard threads hosting the nodes.
    pub fn worker_count(&self) -> usize {
        self.senders.len()
    }

    /// The shard hosting global node id `node` (O(1) — see
    /// [`crate::partition::shard_of`]).
    fn shard_of(&self, node: usize) -> usize {
        assert!(
            node < self.n,
            "node id {node} out of range (n = {})",
            self.n
        );
        partition::shard_of(self.n, self.senders.len(), node)
    }

    /// Sends a command to every shard and waits for all acknowledgements,
    /// merging the per-shard reply buffers in shard (= node-id) order into a
    /// caller-provided buffer (cleared first).
    fn broadcast_command_into(&mut self, cmd: ShardCommand, replies: &mut Vec<NodeMessage>) {
        for tx in &self.senders {
            tx.send(cmd.clone()).expect("shard thread hung up");
        }
        for _ in 0..self.senders.len() {
            let ack = self.reply_rx.recv().expect("shard thread hung up");
            self.slots[ack.shard] = ack.replies;
        }
        replies.clear();
        for slot in &mut self.slots {
            replies.append(slot);
        }
    }

    /// [`ThreadedEngine::broadcast_command_into`] with a fresh reply vector.
    fn broadcast_command(&mut self, cmd: ShardCommand) -> Vec<NodeMessage> {
        let mut replies = Vec::new();
        self.broadcast_command_into(cmd, &mut replies);
        replies
    }

    /// Sends a command to a single node's shard and waits for its
    /// acknowledgement.
    fn unicast_command(&mut self, node: NodeId, msg: ServerMessage) -> Option<NodeMessage> {
        let s = self.shard_of(node.index());
        let local = node.index() - self.bounds[s];
        self.senders[s]
            .send(ShardCommand::ServerOne(local, msg))
            .expect("shard thread hung up");
        let ack = self.reply_rx.recv().expect("shard thread hung up");
        debug_assert_eq!(ack.shard, s);
        ack.replies.into_iter().next()
    }
}

impl Drop for ThreadedEngine {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ShardCommand::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Network for ThreadedEngine {
    fn n(&self) -> usize {
        self.n
    }

    fn advance_time(&mut self, values: &[Value]) {
        assert_eq!(values.len(), self.n(), "one observation per node required");
        // Dead slots stop receiving workload observations: mask the row once,
        // then both the mirror and the shards see the masked copy.
        let mut row = values.to_vec();
        self.population.mask_row(&mut row);
        self.mirror_values.copy_from_slice(&row);
        let replies = self.broadcast_command(ShardCommand::Observe(Arc::new(row)));
        debug_assert!(replies.is_empty());
        self.meter.record_time_step();
    }

    fn advance_time_sparse(&mut self, changes: &[(NodeId, Value)]) {
        // Only the shards hosting changed nodes get a command: re-observing
        // the previous value would leave node state untouched anyway.
        let mut routed: Vec<Vec<(usize, Value)>> = vec![Vec::new(); self.senders.len()];
        for &(node, v) in changes {
            let v = if self.population.is_live(node) { v } else { 0 };
            let s = self.shard_of(node.index());
            self.mirror_values[node.index()] = v;
            routed[s].push((node.index() - self.bounds[s], v));
        }
        let mut involved = 0;
        for (s, shard_changes) in routed.into_iter().enumerate() {
            if !shard_changes.is_empty() {
                self.senders[s]
                    .send(ShardCommand::ObserveSparse(shard_changes))
                    .expect("shard thread hung up");
                involved += 1;
            }
        }
        for _ in 0..involved {
            let ack = self.reply_rx.recv().expect("shard thread hung up");
            debug_assert!(ack.replies.is_empty());
        }
        self.meter.record_time_step();
    }

    fn apply_membership(&mut self, events: &[MembershipEvent]) {
        for &event in events {
            match event {
                MembershipEvent::Leave(node) => {
                    self.population.apply(event);
                    let i = node.index();
                    self.mirror_values[i] = 0;
                    // The leaver observes 0 — node-side this is exactly a
                    // sparse observation, so the command is reused (not a
                    // model message; nothing is charged).
                    let s = self.shard_of(i);
                    let local = i - self.bounds[s];
                    self.senders[s]
                        .send(ShardCommand::ObserveSparse(vec![(local, 0)]))
                        .expect("shard thread hung up");
                    let ack = self.reply_rx.recv().expect("shard thread hung up");
                    debug_assert!(ack.replies.is_empty());
                }
                MembershipEvent::Join(node) => {
                    let generation = self.population.apply(event);
                    let i = node.index();
                    let group = self.mirror_groups[i];
                    let filter = self.mirror_filters[i];
                    self.mirror_values[i] = 0;
                    let s = self.shard_of(i);
                    let local = i - self.bounds[s];
                    self.senders[s]
                        .send(ShardCommand::Rejoin(local, generation))
                        .expect("shard thread hung up");
                    let ack = self.reply_rx.recv().expect("shard thread hung up");
                    debug_assert!(ack.replies.is_empty());
                    // Recovery replay of the slot's current group and filter,
                    // exactly as the in-process engines charge it.
                    self.meter.push_label(ProtocolLabel::Recovery);
                    self.assign_group(node, group);
                    self.assign_filter(node, filter);
                    self.meter.pop_label();
                }
            }
        }
    }

    fn broadcast_params(&mut self, params: FilterParams) {
        self.meter.record(MessageKind::Broadcast);
        self.mirror_params = Some(params);
        for i in 0..self.n() {
            self.mirror_filters[i] = filter_for(self.mirror_groups[i], &params);
        }
        let replies =
            self.broadcast_command(ShardCommand::Server(ServerMessage::BroadcastParams(params)));
        debug_assert!(replies.is_empty());
    }

    fn assign_group(&mut self, node: NodeId, group: NodeGroup) {
        self.meter.record(MessageKind::DownstreamUnicast);
        self.mirror_groups[node.index()] = group;
        if let Some(p) = self.mirror_params {
            self.mirror_filters[node.index()] = filter_for(group, &p);
        }
        let reply = self.unicast_command(node, ServerMessage::AssignGroup(group));
        debug_assert!(reply.is_none());
    }

    fn broadcast_group(&mut self, group: NodeGroup) {
        self.meter.record(MessageKind::Broadcast);
        for i in 0..self.n() {
            self.mirror_groups[i] = group;
            if let Some(p) = self.mirror_params {
                self.mirror_filters[i] = filter_for(group, &p);
            }
        }
        let replies =
            self.broadcast_command(ShardCommand::Server(ServerMessage::BroadcastGroup(group)));
        debug_assert!(replies.is_empty());
    }

    fn assign_filter(&mut self, node: NodeId, filter: Filter) {
        self.meter.record(MessageKind::DownstreamUnicast);
        self.mirror_filters[node.index()] = filter;
        let reply = self.unicast_command(node, ServerMessage::AssignFilter(filter));
        debug_assert!(reply.is_none());
    }

    fn probe(&mut self, node: NodeId) -> Value {
        self.meter.record(MessageKind::DownstreamUnicast);
        let reply = self.unicast_command(node, ServerMessage::Probe);
        self.meter.record(MessageKind::Upstream);
        match reply {
            Some(NodeMessage::ValueReport { value, .. }) => value,
            other => unreachable!("probe must be answered with a value report, got {other:?}"),
        }
    }

    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    ) {
        self.meter.record_round();
        self.broadcast_command_into(
            ShardCommand::Server(ServerMessage::ExistenceRound {
                round,
                population,
                predicate,
            }),
            replies,
        );
        self.meter
            .record_many(MessageKind::Upstream, replies.len() as u64);
    }

    fn end_existence_run(&mut self) {
        self.meter.record(MessageKind::Broadcast);
        let replies = self.broadcast_command(ShardCommand::Server(ServerMessage::EndExistenceRun));
        debug_assert!(replies.is_empty());
    }

    fn meter(&mut self) -> &mut CostMeter {
        &mut self.meter
    }

    fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    fn peek_value(&self, node: NodeId) -> Value {
        self.mirror_values[node.index()]
    }

    fn peek_filter(&self, node: NodeId) -> Filter {
        self.mirror_filters[node.index()]
    }

    fn peek_group(&self, node: NodeId) -> NodeGroup {
        self.mirror_groups[node.index()]
    }

    fn peek_filters_into(&self, out: &mut Vec<Filter>) {
        out.clear();
        out.extend_from_slice(&self.mirror_filters);
    }

    fn peek_values_into(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend_from_slice(&self.mirror_values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicEngine;

    #[test]
    fn threaded_engine_basic_flow() {
        let mut net = ThreadedEngine::new(4, 7);
        net.advance_time(&[5, 10, 15, 20]);
        assert_eq!(net.probe(NodeId(2)), 15);
        net.assign_group(NodeId(3), NodeGroup::Upper);
        net.broadcast_params(FilterParams::Separator { lo: 12, hi: 12 });
        assert_eq!(net.peek_filter(NodeId(3)), Filter::at_least(12));
        assert_eq!(net.peek_filter(NodeId(0)), Filter::at_most(12));
        let stats = net.stats();
        assert_eq!(stats.messages_of_kind(MessageKind::Broadcast), 1);
        assert_eq!(stats.messages_of_kind(MessageKind::DownstreamUnicast), 2);
        assert_eq!(stats.messages_of_kind(MessageKind::Upstream), 1);
    }

    #[test]
    fn violation_detection_over_channels() {
        let mut net = ThreadedEngine::new(3, 7);
        net.advance_time(&[10, 20, 30]);
        net.assign_filter(NodeId(2), Filter::at_most(25));
        let replies = net.existence_round(8, 3, ExistencePredicate::PendingViolation);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].sender(), NodeId(2));
        assert_eq!(replies[0].value(), 30);
    }

    #[test]
    fn threaded_matches_deterministic_counts() {
        // Drive the exact same call sequence through both engines with the same
        // seed and compare the resulting statistics.
        let script = |net: &mut dyn Network| {
            net.advance_time(&[3, 1, 4, 1, 5, 9, 2, 6]);
            net.assign_group(NodeId(5), NodeGroup::Upper);
            net.broadcast_params(FilterParams::Separator { lo: 5, hi: 5 });
            // Node 7 (value 6) violates [0,5] from below; find it.
            let mut found = Vec::new();
            for round in 0..=3 {
                let r = net.existence_round(round, 8, ExistencePredicate::PendingViolation);
                if !r.is_empty() {
                    found = r;
                    net.end_existence_run();
                    break;
                }
            }
            (found, net.stats())
        };
        let mut det = DeterministicEngine::new(8, 1234);
        let (found_det, stats_det) = script(&mut det);
        // Shard counts around the population size must all agree.
        for workers in [1, 2, 3, 8, 12] {
            let mut thr = ThreadedEngine::with_workers(8, 1234, workers);
            assert!(thr.worker_count() <= 8);
            let (found_thr, stats_thr) = script(&mut thr);
            assert_eq!(found_det, found_thr, "replies diverge at {workers} workers");
            assert_eq!(stats_det.total_messages(), stats_thr.total_messages());
            assert_eq!(stats_det.rounds, stats_thr.rounds);
        }
    }

    #[test]
    fn sparse_advance_only_wakes_involved_shards() {
        let mut net = ThreadedEngine::with_workers(8, 3, 4);
        net.advance_time(&[1, 2, 3, 4, 5, 6, 7, 8]);
        net.advance_time_sparse(&[(NodeId(0), 10), (NodeId(7), 80), (NodeId(7), 90)]);
        assert_eq!(net.peek_value(NodeId(0)), 10);
        assert_eq!(net.peek_value(NodeId(7)), 90);
        assert_eq!(net.probe(NodeId(7)), 90); // node-side state agrees
        assert_eq!(net.stats().time_steps, 2);
    }

    #[test]
    fn drop_joins_shard_threads() {
        let net = ThreadedEngine::new(16, 3);
        drop(net); // must not hang or panic
    }
}
