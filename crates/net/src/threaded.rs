//! Channel-based, multi-threaded simulation engine.
//!
//! [`ThreadedEngine`] spawns one OS thread per node. Every interaction crosses a
//! `crossbeam` channel: the server pushes [`ServerMessage`]s (wrapped in the
//! private `NodeCommand` envelope) into per-node command channels, and nodes answer over a
//! shared reply channel. Each command is acknowledged with exactly one reply
//! (possibly carrying no payload), which is how the engine realises the
//! synchronous rounds of the model on top of asynchronous channels. The
//! acknowledgement itself is *not* a model message and is never charged.
//!
//! The node logic is the same [`SimNode`] used by the deterministic engine and
//! the per-node RNG seeding is identical, so message counts agree between the
//! two engines run for run; an integration test asserts this.

use crate::network::Network;
use crate::node::SimNode;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::thread::JoinHandle;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::rule::filter_for;

/// Command sent from the engine to a node thread.
#[derive(Debug, Clone)]
enum NodeCommand {
    /// Deliver the next observation (free of communication cost).
    Observe(Value),
    /// Deliver a server message (charged by the caller).
    Server(ServerMessage),
    /// Terminate the node thread.
    Shutdown,
}

/// Acknowledgement sent from a node thread back to the engine.
#[derive(Debug)]
struct Ack {
    #[allow(dead_code)]
    node: NodeId,
    reply: Option<NodeMessage>,
}

/// Multi-threaded engine (see module documentation).
pub struct ThreadedEngine {
    senders: Vec<Sender<NodeCommand>>,
    reply_rx: Receiver<Ack>,
    handles: Vec<JoinHandle<()>>,
    meter: CostMeter,
    // Server-side mirrors used only by the free inspection API. They are updated
    // from the very messages the server sends, so they can never disagree with
    // the node-side state (filters are a pure function of group + params).
    mirror_values: Vec<Value>,
    mirror_groups: Vec<NodeGroup>,
    mirror_filters: Vec<Filter>,
    mirror_params: Option<FilterParams>,
}

impl ThreadedEngine {
    /// Spawns `n` node threads whose RNGs are derived from `master_seed`.
    pub fn new(n: usize, master_seed: u64) -> ThreadedEngine {
        let (reply_tx, reply_rx) = unbounded::<Ack>();
        let mut senders = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for id in NodeId::all(n) {
            let (tx, rx) = unbounded::<NodeCommand>();
            let reply_tx = reply_tx.clone();
            let mut node = SimNode::new(id, master_seed);
            let handle = std::thread::Builder::new()
                .name(format!("topk-node-{}", id.index()))
                .spawn(move || loop {
                    match rx.recv() {
                        Ok(NodeCommand::Observe(v)) => {
                            node.observe(v);
                            if reply_tx
                                .send(Ack {
                                    node: id,
                                    reply: None,
                                })
                                .is_err()
                            {
                                break;
                            }
                        }
                        Ok(NodeCommand::Server(msg)) => {
                            let reply = node.handle(&msg);
                            if reply_tx.send(Ack { node: id, reply }).is_err() {
                                break;
                            }
                        }
                        Ok(NodeCommand::Shutdown) | Err(_) => break,
                    }
                })
                .expect("failed to spawn node thread");
            senders.push(tx);
            handles.push(handle);
        }
        ThreadedEngine {
            senders,
            reply_rx,
            handles,
            meter: CostMeter::new(),
            mirror_values: vec![0; n],
            mirror_groups: vec![NodeGroup::Lower; n],
            mirror_filters: vec![Filter::FULL; n],
            mirror_params: None,
        }
    }

    /// Sends a command to every node and waits for all acknowledgements.
    fn broadcast_command(&mut self, make: impl Fn(NodeId) -> NodeCommand) -> Vec<NodeMessage> {
        let mut replies = Vec::new();
        self.broadcast_command_into(make, &mut replies);
        replies
    }

    /// Sends a command to every node, waits for all acknowledgements and
    /// collects the replies into a caller-provided buffer (cleared first).
    fn broadcast_command_into(
        &mut self,
        make: impl Fn(NodeId) -> NodeCommand,
        replies: &mut Vec<NodeMessage>,
    ) {
        for (i, tx) in self.senders.iter().enumerate() {
            tx.send(make(NodeId(i))).expect("node thread hung up");
        }
        replies.clear();
        for _ in 0..self.senders.len() {
            let ack = self.reply_rx.recv().expect("node thread hung up");
            if let Some(reply) = ack.reply {
                replies.push(reply);
            }
        }
        // Keep replies in node-id order so both engines process violations in
        // the same order (channels deliver acknowledgements in arrival order,
        // which depends on the scheduler).
        replies.sort_by_key(|r| r.sender());
    }

    /// Sends a command to a single node and waits for its acknowledgement.
    fn unicast_command(&mut self, node: NodeId, cmd: NodeCommand) -> Option<NodeMessage> {
        self.senders[node.index()]
            .send(cmd)
            .expect("node thread hung up");
        let ack = self.reply_rx.recv().expect("node thread hung up");
        ack.reply
    }
}

impl Drop for ThreadedEngine {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(NodeCommand::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Network for ThreadedEngine {
    fn n(&self) -> usize {
        self.senders.len()
    }

    fn advance_time(&mut self, values: &[Value]) {
        assert_eq!(values.len(), self.n(), "one observation per node required");
        self.mirror_values.copy_from_slice(values);
        let values = values.to_vec();
        let replies = self.broadcast_command(|id| NodeCommand::Observe(values[id.index()]));
        debug_assert!(replies.is_empty());
        self.meter.record_time_step();
    }

    fn advance_time_sparse(&mut self, changes: &[(NodeId, Value)]) {
        // Only the changed nodes need an Observe command: re-observing the
        // previous value would leave node state untouched anyway.
        for &(node, v) in changes {
            self.mirror_values[node.index()] = v;
            self.senders[node.index()]
                .send(NodeCommand::Observe(v))
                .expect("node thread hung up");
        }
        for _ in 0..changes.len() {
            let ack = self.reply_rx.recv().expect("node thread hung up");
            debug_assert!(ack.reply.is_none());
        }
        self.meter.record_time_step();
    }

    fn broadcast_params(&mut self, params: FilterParams) {
        self.meter.record(MessageKind::Broadcast);
        self.mirror_params = Some(params);
        for i in 0..self.n() {
            self.mirror_filters[i] = filter_for(self.mirror_groups[i], &params);
        }
        let replies =
            self.broadcast_command(|_| NodeCommand::Server(ServerMessage::BroadcastParams(params)));
        debug_assert!(replies.is_empty());
    }

    fn assign_group(&mut self, node: NodeId, group: NodeGroup) {
        self.meter.record(MessageKind::DownstreamUnicast);
        self.mirror_groups[node.index()] = group;
        if let Some(p) = self.mirror_params {
            self.mirror_filters[node.index()] = filter_for(group, &p);
        }
        let reply =
            self.unicast_command(node, NodeCommand::Server(ServerMessage::AssignGroup(group)));
        debug_assert!(reply.is_none());
    }

    fn broadcast_group(&mut self, group: NodeGroup) {
        self.meter.record(MessageKind::Broadcast);
        for i in 0..self.n() {
            self.mirror_groups[i] = group;
            if let Some(p) = self.mirror_params {
                self.mirror_filters[i] = filter_for(group, &p);
            }
        }
        let replies =
            self.broadcast_command(|_| NodeCommand::Server(ServerMessage::BroadcastGroup(group)));
        debug_assert!(replies.is_empty());
    }

    fn assign_filter(&mut self, node: NodeId, filter: Filter) {
        self.meter.record(MessageKind::DownstreamUnicast);
        self.mirror_filters[node.index()] = filter;
        let reply = self.unicast_command(
            node,
            NodeCommand::Server(ServerMessage::AssignFilter(filter)),
        );
        debug_assert!(reply.is_none());
    }

    fn probe(&mut self, node: NodeId) -> Value {
        self.meter.record(MessageKind::DownstreamUnicast);
        let reply = self.unicast_command(node, NodeCommand::Server(ServerMessage::Probe));
        self.meter.record(MessageKind::Upstream);
        match reply {
            Some(NodeMessage::ValueReport { value, .. }) => value,
            other => unreachable!("probe must be answered with a value report, got {other:?}"),
        }
    }

    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    ) {
        self.meter.record_round();
        self.broadcast_command_into(
            |_| {
                NodeCommand::Server(ServerMessage::ExistenceRound {
                    round,
                    population,
                    predicate,
                })
            },
            replies,
        );
        self.meter
            .record_many(MessageKind::Upstream, replies.len() as u64);
    }

    fn end_existence_run(&mut self) {
        self.meter.record(MessageKind::Broadcast);
        let replies =
            self.broadcast_command(|_| NodeCommand::Server(ServerMessage::EndExistenceRun));
        debug_assert!(replies.is_empty());
    }

    fn meter(&mut self) -> &mut CostMeter {
        &mut self.meter
    }

    fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    fn peek_value(&self, node: NodeId) -> Value {
        self.mirror_values[node.index()]
    }

    fn peek_filter(&self, node: NodeId) -> Filter {
        self.mirror_filters[node.index()]
    }

    fn peek_group(&self, node: NodeId) -> NodeGroup {
        self.mirror_groups[node.index()]
    }

    fn peek_filters_into(&self, out: &mut Vec<Filter>) {
        out.clear();
        out.extend_from_slice(&self.mirror_filters);
    }

    fn peek_values_into(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend_from_slice(&self.mirror_values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicEngine;

    #[test]
    fn threaded_engine_basic_flow() {
        let mut net = ThreadedEngine::new(4, 7);
        net.advance_time(&[5, 10, 15, 20]);
        assert_eq!(net.probe(NodeId(2)), 15);
        net.assign_group(NodeId(3), NodeGroup::Upper);
        net.broadcast_params(FilterParams::Separator { lo: 12, hi: 12 });
        assert_eq!(net.peek_filter(NodeId(3)), Filter::at_least(12));
        assert_eq!(net.peek_filter(NodeId(0)), Filter::at_most(12));
        let stats = net.stats();
        assert_eq!(stats.messages_of_kind(MessageKind::Broadcast), 1);
        assert_eq!(stats.messages_of_kind(MessageKind::DownstreamUnicast), 2);
        assert_eq!(stats.messages_of_kind(MessageKind::Upstream), 1);
    }

    #[test]
    fn violation_detection_over_channels() {
        let mut net = ThreadedEngine::new(3, 7);
        net.advance_time(&[10, 20, 30]);
        net.assign_filter(NodeId(2), Filter::at_most(25));
        let replies = net.existence_round(8, 3, ExistencePredicate::PendingViolation);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].sender(), NodeId(2));
        assert_eq!(replies[0].value(), 30);
    }

    #[test]
    fn threaded_matches_deterministic_counts() {
        // Drive the exact same call sequence through both engines with the same
        // seed and compare the resulting statistics.
        let script = |net: &mut dyn Network| {
            net.advance_time(&[3, 1, 4, 1, 5, 9, 2, 6]);
            net.assign_group(NodeId(5), NodeGroup::Upper);
            net.broadcast_params(FilterParams::Separator { lo: 5, hi: 5 });
            // Node 7 (value 6) violates [0,5] from below; find it.
            let mut found = Vec::new();
            for round in 0..=3 {
                let r = net.existence_round(round, 8, ExistencePredicate::PendingViolation);
                if !r.is_empty() {
                    found = r;
                    net.end_existence_run();
                    break;
                }
            }
            (found, net.stats())
        };
        let mut det = DeterministicEngine::new(8, 1234);
        let mut thr = ThreadedEngine::new(8, 1234);
        let (found_det, stats_det) = script(&mut det);
        let (found_thr, stats_thr) = script(&mut thr);
        assert_eq!(found_det, found_thr);
        assert_eq!(stats_det.total_messages(), stats_thr.total_messages());
        assert_eq!(stats_det.rounds, stats_thr.rounds);
    }

    #[test]
    fn drop_joins_node_threads() {
        let net = ThreadedEngine::new(16, 3);
        drop(net); // must not hang or panic
    }
}
