//! Node-side state machine.
//!
//! [`SimNode`] is the *entire* logic a distributed node needs: store the filter
//! (or derive it from the last broadcast parameters and the assigned group),
//! watch the locally observed value for filter violations, answer probes, and
//! participate in existence-protocol rounds by flipping the prescribed coin.
//!
//! Both simulation engines drive the same `SimNode` type, so their behaviour —
//! including every random decision, because each node owns a `ChaCha8` RNG
//! seeded from `(master seed, node id)` — is identical by construction.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::rule::filter_for;

/// The state machine executed by every simulated node.
#[derive(Debug, Clone)]
pub struct SimNode {
    id: NodeId,
    value: Value,
    filter: Filter,
    group: NodeGroup,
    params: Option<FilterParams>,
    pending_violation: Option<Violation>,
    rng: ChaCha8Rng,
}

impl SimNode {
    /// Creates a node with the all-embracing filter `[0, ∞)`, value 0 and a
    /// deterministic RNG derived from `(master_seed, id)`.
    pub fn new(id: NodeId, master_seed: u64) -> SimNode {
        let seed = node_seed(master_seed, id);
        SimNode {
            id,
            value: 0,
            filter: Filter::FULL,
            group: NodeGroup::Lower,
            params: None,
            pending_violation: None,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The value observed most recently.
    pub fn value(&self) -> Value {
        self.value
    }

    /// The filter currently in effect.
    pub fn filter(&self) -> Filter {
        self.filter
    }

    /// The group currently assigned by the server.
    pub fn group(&self) -> NodeGroup {
        self.group
    }

    /// The violation the node is waiting to report, if any.
    pub fn pending_violation(&self) -> Option<Violation> {
        self.pending_violation
    }

    /// Observes a new value from the node's private stream.
    ///
    /// Observation is free of communication cost: the node merely records the
    /// value and notes whether it violates the current filter.
    pub fn observe(&mut self, v: Value) {
        self.value = v;
        self.pending_violation = self.filter.check(v);
    }

    /// Handles a message from the server, returning an immediate reply if the
    /// protocol calls for one.
    pub fn handle(&mut self, msg: &ServerMessage) -> Option<NodeMessage> {
        match *msg {
            // A query-scoped assignment carries the node's new *effective*
            // filter (the intersection the server computed); the node applies
            // it exactly like a plain assignment — the QueryId is a cost
            // attribution tag, not node state.
            ServerMessage::AssignFilter(f) | ServerMessage::AssignQueryFilter { filter: f, .. } => {
                self.filter = f;
                self.pending_violation = self.filter.check(self.value);
                None
            }
            ServerMessage::AssignGroup(g) | ServerMessage::BroadcastGroup(g) => {
                self.group = g;
                if let Some(p) = self.params {
                    self.filter = filter_for(g, &p);
                }
                self.pending_violation = self.filter.check(self.value);
                None
            }
            ServerMessage::BroadcastParams(p) => {
                self.params = Some(p);
                self.filter = filter_for(self.group, &p);
                self.pending_violation = self.filter.check(self.value);
                None
            }
            ServerMessage::Probe => Some(NodeMessage::ValueReport {
                node: self.id,
                value: self.value,
            }),
            ServerMessage::ExistenceRound {
                round,
                population,
                predicate,
            } => self.existence_round(round, population, predicate),
            ServerMessage::EndExistenceRun => None,
        }
    }

    /// Re-creates this node as the generation-`generation` joiner of its slot:
    /// fresh monitoring state (value 0, the all-embracing filter, group
    /// `Lower`, no pending violation) and an RNG reseeded from
    /// `(master_seed, id, generation)`, so the joiner shares no randomness with
    /// any previous occupant of the slot.
    ///
    /// The last broadcast parameters are *retained*: the broadcast channel is
    /// reliable in this model, and a joiner synchronises the current parameters
    /// on arrival (the same doctrine `docs/FAULTS.md` establishes for
    /// crash-rejoin). The server separately replays the slot's group and filter
    /// under the `Recovery` cost label.
    pub fn rejoin_generation(&mut self, master_seed: u64, generation: u32) {
        self.value = 0;
        self.filter = Filter::FULL;
        self.group = NodeGroup::Lower;
        self.pending_violation = None;
        self.rng = ChaCha8Rng::seed_from_u64(node_seed_gen(master_seed, self.id, generation));
    }

    /// Participates in round `round` of an existence run: if the predicate holds
    /// locally, send a message with probability `min(1, 2^round / population)`.
    fn existence_round(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
    ) -> Option<NodeMessage> {
        if !predicate.evaluate(self.id, self.value, self.pending_violation) {
            return None;
        }
        if !existence_coin(&mut self.rng, round, population) {
            return None;
        }
        Some(match (predicate, self.pending_violation) {
            (ExistencePredicate::PendingViolation, Some(direction)) => {
                NodeMessage::ViolationReport {
                    node: self.id,
                    value: self.value,
                    direction,
                }
            }
            _ => NodeMessage::ExistenceResponse {
                node: self.id,
                value: self.value,
            },
        })
    }
}

/// Seed of the per-node RNG: a fixed mix of the engine's master seed and the
/// node id, shared by every engine so their random streams agree node for node.
pub(crate) fn node_seed(master_seed: u64, id: NodeId) -> u64 {
    master_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(id.index() as u64 + 1)
}

/// Seed of the generation-`generation` occupant of slot `id`: the master seed
/// is displaced by a per-generation odd constant before the [`node_seed`] mix,
/// so generation 0 is *exactly* `node_seed(master_seed, id)` (fresh engines are
/// bit-for-bit unchanged) while every later generation draws from an unrelated
/// stream. Shared by every engine and by the remote shard clients, which
/// compute it independently and must agree with the server's bookkeeping.
pub(crate) fn node_seed_gen(master_seed: u64, id: NodeId, generation: u32) -> u64 {
    node_seed(
        master_seed.wrapping_add(u64::from(generation).wrapping_mul(0xA076_1D64_78BD_642F)),
        id,
    )
}

/// The Lemma 3.1 coin: whether a node whose predicate holds sends a message in
/// round `round` of an existence run over `population` nodes — probability
/// `min(1, 2^round / population)`.
///
/// Every engine flips this exact coin on the node's own RNG, and *only* for
/// nodes whose predicate holds, so an engine that skips inactive nodes entirely
/// (like `IndexedEngine`) consumes each node's random stream bit-for-bit
/// identically to one that visits all nodes.
pub(crate) fn existence_coin(rng: &mut ChaCha8Rng, round: u32, population: u32) -> bool {
    let population = population.max(1);
    let numerator = 1u32.checked_shl(round).unwrap_or(u32::MAX).min(population);
    rng.gen_ratio(numerator, population)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> SimNode {
        SimNode::new(NodeId(0), 42)
    }

    #[test]
    fn coin_is_certain_once_two_to_round_reaches_population() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..32 {
            assert!(existence_coin(&mut rng, 10, 1024));
            assert!(existence_coin(&mut rng, 40, 7)); // 2^40 overflows the shl
        }
    }

    #[test]
    fn fresh_node_never_violates() {
        let mut n = node();
        n.observe(12345);
        assert_eq!(n.pending_violation(), None);
        assert_eq!(n.value(), 12345);
        assert_eq!(n.filter(), Filter::FULL);
    }

    #[test]
    fn filter_assignment_detects_immediate_violation() {
        let mut n = node();
        n.observe(100);
        // The paper allows "invalid" filters: assigning [0, 50] to a node holding
        // 100 makes the node observe a violation right away.
        n.handle(&ServerMessage::AssignFilter(Filter::at_most(50)));
        assert_eq!(n.pending_violation(), Some(Violation::FromBelow));
        // And assigning [200, ∞) gives a violation from above.
        n.handle(&ServerMessage::AssignFilter(Filter::at_least(200)));
        assert_eq!(n.pending_violation(), Some(Violation::FromAbove));
        // A containing filter clears the pending violation.
        n.handle(&ServerMessage::AssignFilter(
            Filter::bounded(50, 150).unwrap(),
        ));
        assert_eq!(n.pending_violation(), None);
    }

    #[test]
    fn query_scoped_assignment_behaves_like_plain_assignment() {
        let mut plain = node();
        let mut scoped = node();
        plain.observe(100);
        scoped.observe(100);
        plain.handle(&ServerMessage::AssignFilter(Filter::at_most(50)));
        scoped.handle(&ServerMessage::AssignQueryFilter {
            query: QueryId(7),
            filter: Filter::at_most(50),
        });
        assert_eq!(plain.filter(), scoped.filter());
        assert_eq!(plain.pending_violation(), scoped.pending_violation());
        // An empty effective filter (disjoint query bands) always violates.
        scoped.handle(&ServerMessage::AssignQueryFilter {
            query: QueryId(7),
            filter: Filter::EMPTY,
        });
        assert_eq!(scoped.pending_violation(), Some(Violation::FromBelow));
    }

    #[test]
    fn observation_after_filter_triggers_violation() {
        let mut n = node();
        n.handle(&ServerMessage::AssignFilter(
            Filter::bounded(10, 20).unwrap(),
        ));
        n.observe(15);
        assert_eq!(n.pending_violation(), None);
        n.observe(25);
        assert_eq!(n.pending_violation(), Some(Violation::FromBelow));
        n.observe(5);
        assert_eq!(n.pending_violation(), Some(Violation::FromAbove));
    }

    #[test]
    fn group_and_params_derive_filter() {
        let mut n = node();
        n.observe(100);
        n.handle(&ServerMessage::AssignGroup(NodeGroup::Upper));
        // No params yet: filter unchanged.
        assert_eq!(n.filter(), Filter::FULL);
        n.handle(&ServerMessage::BroadcastParams(FilterParams::Separator {
            lo: 80,
            hi: 80,
        }));
        assert_eq!(n.filter(), Filter::at_least(80));
        // Switching the group re-derives from the stored params.
        n.handle(&ServerMessage::AssignGroup(NodeGroup::Lower));
        assert_eq!(n.filter(), Filter::at_most(80));
        assert_eq!(n.pending_violation(), Some(Violation::FromBelow));
        assert_eq!(n.group(), NodeGroup::Lower);
    }

    #[test]
    fn probe_reports_current_value() {
        let mut n = node();
        n.observe(77);
        let reply = n.handle(&ServerMessage::Probe);
        assert_eq!(
            reply,
            Some(NodeMessage::ValueReport {
                node: NodeId(0),
                value: 77
            })
        );
    }

    #[test]
    fn existence_round_only_fires_when_predicate_holds() {
        let mut n = node();
        n.observe(10);
        // Predicate false: never responds, regardless of probability 1.
        for round in 0..8 {
            let reply = n.handle(&ServerMessage::ExistenceRound {
                round,
                population: 1,
                predicate: ExistencePredicate::GreaterThan(10),
            });
            assert_eq!(reply, None);
        }
        // Predicate true with probability 1 (round so that 2^r >= population).
        let reply = n.handle(&ServerMessage::ExistenceRound {
            round: 0,
            population: 1,
            predicate: ExistencePredicate::AtLeast(10),
        });
        assert!(matches!(
            reply,
            Some(NodeMessage::ExistenceResponse {
                node: NodeId(0),
                value: 10
            })
        ));
    }

    #[test]
    fn existence_round_reports_violation_direction() {
        let mut n = node();
        n.handle(&ServerMessage::AssignFilter(
            Filter::bounded(10, 20).unwrap(),
        ));
        n.observe(30);
        let reply = n.handle(&ServerMessage::ExistenceRound {
            round: 10,
            population: 1,
            predicate: ExistencePredicate::PendingViolation,
        });
        assert_eq!(
            reply,
            Some(NodeMessage::ViolationReport {
                node: NodeId(0),
                value: 30,
                direction: Violation::FromBelow
            })
        );
    }

    #[test]
    fn existence_round_respects_probability_zero_rounds() {
        // With a large population and round 0 the probability is 1/population;
        // over many trials the empirical rate should be roughly 1/population.
        let mut hits = 0;
        let trials = 2000;
        for seed in 0..trials {
            let mut n = SimNode::new(NodeId(0), seed);
            n.observe(100);
            let reply = n.handle(&ServerMessage::ExistenceRound {
                round: 0,
                population: 16,
                predicate: ExistencePredicate::GreaterThan(0),
            });
            if reply.is_some() {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / f64::from(trials as u32);
        assert!(
            (rate - 1.0 / 16.0).abs() < 0.03,
            "empirical rate {rate} too far from 1/16"
        );
    }

    #[test]
    fn same_seed_gives_same_decisions() {
        let mut a = SimNode::new(NodeId(3), 7);
        let mut b = SimNode::new(NodeId(3), 7);
        a.observe(5);
        b.observe(5);
        for round in 0..10 {
            let msg = ServerMessage::ExistenceRound {
                round,
                population: 64,
                predicate: ExistencePredicate::GreaterThan(0),
            };
            assert_eq!(a.handle(&msg), b.handle(&msg));
        }
    }
}
