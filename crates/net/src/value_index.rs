//! Incrementally maintained radix-bucket index over the value column.
//!
//! [`ValueIndex`] replaces the lazily *re-sorted* `(value, id)` vector that
//! the indexed and sharded engines originally used for threshold/rank
//! predicates. The sorted vector had a sharp cost cliff: a single changed
//! observation invalidated it, and the next threshold round paid a full
//! `O(n log n)` sort. The radix index keeps ids in ~16 K *buckets* keyed by a
//! monotone `(exponent, mantissa)` compression of the value domain, so
//!
//! * an observation moves one id between two buckets — `O(1)` per update
//!   (one `swap_remove`, one push, two bitmap bits), no sorting ever;
//! * a threshold query walks an occupancy bitmap and concatenates whole
//!   buckets, touching only the two *boundary* buckets element-wise.
//!
//! ## Why bucket order is enough
//!
//! Buckets only ever feed existence rounds, and those consume the active set
//! as a *set*: each active node flips its own independent RNG
//! (`node::existence_coin`), and the engines sort replies by sender
//! afterwards (per shard for the sharded engine). The paper's `(value, id)`
//! total order matters solely for *membership* in a rank window — which the
//! boundary-bucket filter decides exactly, via the same
//! [`value_order`] used by the sort-based reference — never for iteration
//! order. `tests/indexed_differential.rs` and `tests/engines_agree.rs` pin
//! bit-identical replies and message counts against the baseline engine.
//!
//! ## Warm/cold adaptivity
//!
//! The index is **cold** until the first threshold/rank query *warms* it with
//! one `O(n)` build ([`ValueIndex::ensure_warm`]). While cold, updates are
//! free no-ops — a workload that never issues threshold rounds (the
//! throughput harness's violation-detection loop, for instance) pays one
//! branch per observation and allocates nothing. While warm, updates are
//! maintained incrementally. Bulk mutation paths that cannot attribute
//! changes per node (dense rows in the dense regime, deferred sparse
//! batches) drop the index back to cold with [`ValueIndex::invalidate`] —
//! an `O(1)` flag — and the next query rebuilds, reusing every bucket's
//! capacity.

use topk_model::types::{value_order, NodeId, Value};

/// Number of radix buckets: key 0 for value 0, then 256 mantissa slices for
/// each of the 64 possible exponents (position of the leading one bit).
const BUCKETS: usize = 1 + 64 * 256;

/// Words in the occupancy bitmap.
const OCC_WORDS: usize = BUCKETS.div_ceil(64);

/// Maps a value to its radix bucket key.
///
/// The key is `(exponent, top-8-mantissa-bits)` packed into `1 + e·256 + m`:
/// `e` is the position of the leading one bit and `m` the eight bits after
/// it (zero-padded for small values). Both components are monotone
/// non-decreasing in `v`, so **`v₁ < v₂ ⇒ bucket_of(v₁) ≤ bucket_of(v₂)`** —
/// equivalently, every value in a lower bucket is strictly smaller than
/// every value in a higher bucket. That single property is what lets range
/// queries take whole interior buckets unfiltered and inspect only the
/// boundary buckets element-wise. A unit test pins monotonicity across
/// exponent boundaries and the extremes.
#[inline]
fn bucket_of(v: Value) -> usize {
    if v == 0 {
        return 0;
    }
    let e = 63 - v.leading_zeros() as usize;
    let m = if e >= 8 {
        (v >> (e - 8)) & 0xff
    } else {
        (v << (8 - e)) & 0xff
    };
    1 + e * 256 + m as usize
}

/// Radix-bucket index over a (shard-local) value column. See the module
/// documentation for the design; all ids are local (`u32`), and `offset` —
/// the global id of local id 0 — re-globalises them for the paper's
/// `(value, id)` tie-break in rank-window queries.
#[derive(Debug, Clone)]
pub struct ValueIndex {
    /// Global id of local id 0 (0 for unsharded engines).
    offset: usize,
    /// Bucket contents (local ids, arbitrary order). Allocated lazily by the
    /// first warm-up so cold indexes cost nothing but the struct itself.
    buckets: Vec<Vec<u32>>,
    /// Per id: its current bucket key. Valid only while warm.
    key_of: Vec<u16>,
    /// Per id: its position inside its bucket. Valid only while warm.
    slot_of: Vec<u32>,
    /// Occupancy bitmap over bucket keys (bit set ⇔ bucket non-empty), so
    /// queries skip empty buckets in 64-key strides.
    occ: Vec<u64>,
    warm: bool,
}

impl ValueIndex {
    /// Creates a cold index for `n` local ids whose global ids start at
    /// `offset`.
    pub fn new(offset: usize, n: usize) -> ValueIndex {
        ValueIndex {
            offset,
            buckets: Vec::new(),
            key_of: vec![0; n],
            slot_of: vec![0; n],
            occ: vec![0; OCC_WORDS],
            warm: false,
        }
    }

    /// Whether the index is currently maintained (warm). Cold indexes must be
    /// warmed with [`ValueIndex::ensure_warm`] before querying.
    #[inline]
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Drops the index to cold: `O(1)`, bucket storage (and capacity) is
    /// retained for the next warm-up. Bulk mutation paths that cannot
    /// attribute changes to individual ids call this instead of updating.
    #[inline]
    pub fn invalidate(&mut self) {
        self.warm = false;
    }

    /// Warms the index from the value column if it is cold; returns whether a
    /// rebuild actually ran (the engines count these to prove a protocol
    /// round never rebuilds twice).
    pub fn ensure_warm(&mut self, values: &[Value]) -> bool {
        if self.warm {
            return false;
        }
        assert_eq!(values.len(), self.key_of.len(), "one value per id required");
        if self.buckets.is_empty() {
            self.buckets = vec![Vec::new(); BUCKETS];
        } else {
            // Clear exactly the buckets the previous warm period used,
            // keeping their capacity.
            for w in 0..OCC_WORDS {
                let mut word = self.occ[w];
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    self.buckets[w * 64 + b].clear();
                    word &= word - 1;
                }
            }
        }
        self.occ.fill(0);
        for (i, &v) in values.iter().enumerate() {
            let k = bucket_of(v);
            self.key_of[i] = k as u16;
            self.slot_of[i] = self.buckets[k].len() as u32;
            self.buckets[k].push(i as u32);
            self.occ[k / 64] |= 1 << (k % 64);
        }
        self.warm = true;
        true
    }

    /// Records that local id `id` now holds `new_value`: moves it between
    /// buckets in `O(1)`. No-op while cold (cold indexes reconcile wholesale
    /// on the next warm-up).
    #[inline]
    pub fn note_update(&mut self, id: u32, new_value: Value) {
        if !self.warm {
            return;
        }
        let k_new = bucket_of(new_value);
        let k_old = self.key_of[id as usize] as usize;
        if k_old == k_new {
            return;
        }
        // Remove from the old bucket by swap, fixing the moved entry's slot.
        let s = self.slot_of[id as usize] as usize;
        let bucket = &mut self.buckets[k_old];
        bucket.swap_remove(s);
        if let Some(&moved) = bucket.get(s) {
            self.slot_of[moved as usize] = s as u32;
        }
        if bucket.is_empty() {
            self.occ[k_old / 64] &= !(1 << (k_old % 64));
        }
        // Insert into the new bucket.
        self.key_of[id as usize] = k_new as u16;
        self.slot_of[id as usize] = self.buckets[k_new].len() as u32;
        self.buckets[k_new].push(id);
        self.occ[k_new / 64] |= 1 << (k_new % 64);
    }

    /// Calls `f(k)` for every occupied bucket key in `lo..=hi`, in ascending
    /// key order, via the occupancy bitmap.
    #[inline]
    fn for_each_occupied_in(&self, lo: usize, hi: usize, mut f: impl FnMut(usize)) {
        if lo > hi {
            return;
        }
        let (w_lo, w_hi) = (lo / 64, hi / 64);
        for w in w_lo..=w_hi {
            let mut word = self.occ[w];
            if w == w_lo {
                word &= !0u64 << (lo % 64);
            }
            if w == w_hi && hi % 64 != 63 {
                word &= (1u64 << (hi % 64 + 1)) - 1;
            }
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                f(w * 64 + b);
                word &= word - 1;
            }
        }
    }

    /// Appends the local ids of all values `> t` to `out`.
    ///
    /// `values` must be the column the index was warmed/updated against; the
    /// boundary bucket (the one `t` itself maps to) is filtered per id, every
    /// higher bucket is appended wholesale (its values are all `> t` by
    /// bucket monotonicity).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the index is cold.
    pub fn collect_greater_than(&self, t: Value, values: &[Value], out: &mut Vec<u32>) {
        debug_assert!(self.warm, "query on a cold index");
        let kt = bucket_of(t);
        for &id in &self.buckets[kt] {
            if values[id as usize] > t {
                out.push(id);
            }
        }
        self.for_each_occupied_in(kt + 1, BUCKETS - 1, |k| {
            out.extend_from_slice(&self.buckets[k]);
        });
    }

    /// Appends the local ids of all values `>= t` to `out` (see
    /// [`ValueIndex::collect_greater_than`]).
    pub fn collect_at_least(&self, t: Value, values: &[Value], out: &mut Vec<u32>) {
        debug_assert!(self.warm, "query on a cold index");
        let kt = bucket_of(t);
        for &id in &self.buckets[kt] {
            if values[id as usize] >= t {
                out.push(id);
            }
        }
        self.for_each_occupied_in(kt + 1, BUCKETS - 1, |k| {
            out.extend_from_slice(&self.buckets[k]);
        });
    }

    /// Appends the local ids of all values `< t` to `out` (see
    /// [`ValueIndex::collect_greater_than`]).
    pub fn collect_less_than(&self, t: Value, values: &[Value], out: &mut Vec<u32>) {
        debug_assert!(self.warm, "query on a cold index");
        let kt = bucket_of(t);
        if kt > 0 {
            self.for_each_occupied_in(0, kt - 1, |k| {
                out.extend_from_slice(&self.buckets[k]);
            });
        }
        for &id in &self.buckets[kt] {
            if values[id as usize] < t {
                out.push(id);
            }
        }
    }

    /// Appends the local ids strictly between `above` and `below` in the
    /// paper's `(value, id)` total order ([`value_order`], global ids). A
    /// `None` bound is unbounded on that side; an inverted window selects
    /// nothing. Interior buckets are appended wholesale; the (at most two)
    /// boundary buckets are filtered with the exact `value_order` predicate,
    /// which also resolves equal-value id tie-breaks.
    pub fn collect_rank_window(
        &self,
        above: Option<(Value, NodeId)>,
        below: Option<(Value, NodeId)>,
        values: &[Value],
        out: &mut Vec<u32>,
    ) {
        debug_assert!(self.warm, "query on a cold index");
        let k_lo = above.map_or(0, |(v, _)| bucket_of(v));
        let k_hi = below.map_or(BUCKETS - 1, |(v, _)| bucket_of(v));
        self.for_each_occupied_in(k_lo, k_hi, |k| {
            if k == k_lo || k == k_hi {
                for &id in &self.buckets[k] {
                    let key = (values[id as usize], NodeId(self.offset + id as usize));
                    let ok_above =
                        above.map_or(true, |b| value_order(key, b) == std::cmp::Ordering::Greater);
                    let ok_below =
                        below.map_or(true, |b| value_order(key, b) == std::cmp::Ordering::Less);
                    if ok_above && ok_below {
                        out.push(id);
                    }
                }
            } else {
                out.extend_from_slice(&self.buckets[k]);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sort-based reference: the engines' original `(value, id)` index.
    fn sorted_reference(offset: usize, values: &[Value]) -> Vec<(Value, u32)> {
        let mut v: Vec<(Value, u32)> = values.iter().copied().zip(0..).collect();
        v.sort_unstable_by(|&(va, ia), &(vb, ib)| {
            value_order(
                (va, NodeId(offset + ia as usize)),
                (vb, NodeId(offset + ib as usize)),
            )
        });
        v
    }

    fn sorted_ids(mut ids: Vec<u32>) -> Vec<u32> {
        ids.sort_unstable();
        ids
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 16
    }

    /// Mix of magnitudes so bucket boundaries at several exponents are hit.
    fn random_value(state: &mut u64) -> Value {
        match lcg(state) % 5 {
            0 => lcg(state) % 8,
            1 => lcg(state) % 300,
            2 => lcg(state) % 100_000,
            3 => lcg(state),
            _ => Value::MAX - lcg(state) % 3,
        }
    }

    #[test]
    fn bucket_of_is_monotone_and_bounded() {
        let mut prev = bucket_of(0);
        assert_eq!(prev, 0);
        // Exhaustive over the small domain, spot checks across exponents.
        for v in 1..=4096u64 {
            let k = bucket_of(v);
            assert!(k >= prev, "bucket_of not monotone at {v}");
            assert!(k < BUCKETS);
            prev = k;
        }
        for e in 0..64 {
            let lo = 1u64 << e;
            let hi = lo | (lo - 1);
            assert!(bucket_of(lo) <= bucket_of(hi));
            assert!(bucket_of(hi) < BUCKETS);
            if e > 0 {
                assert!(bucket_of(lo - 1) <= bucket_of(lo));
            }
        }
        assert_eq!(bucket_of(Value::MAX), BUCKETS - 1);
    }

    #[test]
    fn queries_match_sorted_reference() {
        for offset in [0usize, 1000] {
            let mut seed = 0xfeed ^ offset as u64;
            let n = 300;
            let values: Vec<Value> = (0..n).map(|_| random_value(&mut seed)).collect();
            let mut idx = ValueIndex::new(offset, n);
            assert!(idx.ensure_warm(&values));
            assert!(!idx.ensure_warm(&values), "second warm-up must be free");
            let reference = sorted_reference(offset, &values);
            let mut out = Vec::new();
            for _ in 0..50 {
                let t = match lcg(&mut seed) % 4 {
                    0 => values[(lcg(&mut seed) % n as u64) as usize], // exact hit
                    _ => random_value(&mut seed),
                };
                out.clear();
                idx.collect_greater_than(t, &values, &mut out);
                let want: Vec<u32> = reference
                    .iter()
                    .filter(|&&(v, _)| v > t)
                    .map(|&(_, i)| i)
                    .collect();
                assert_eq!(sorted_ids(out.clone()), sorted_ids(want), "gt {t}");
                out.clear();
                idx.collect_at_least(t, &values, &mut out);
                let want: Vec<u32> = reference
                    .iter()
                    .filter(|&&(v, _)| v >= t)
                    .map(|&(_, i)| i)
                    .collect();
                assert_eq!(sorted_ids(out.clone()), sorted_ids(want), "ge {t}");
                out.clear();
                idx.collect_less_than(t, &values, &mut out);
                let want: Vec<u32> = reference
                    .iter()
                    .filter(|&&(v, _)| v < t)
                    .map(|&(_, i)| i)
                    .collect();
                assert_eq!(sorted_ids(out.clone()), sorted_ids(want), "lt {t}");
            }
        }
    }

    #[test]
    fn rank_window_matches_sorted_reference_including_ties() {
        let offset = 64;
        let mut seed = 0xace5u64;
        let n = 200;
        // Heavy duplication so id tie-breaks matter.
        let values: Vec<Value> = (0..n).map(|_| lcg(&mut seed) % 16).collect();
        let mut idx = ValueIndex::new(offset, n);
        idx.ensure_warm(&values);
        let reference = sorted_reference(offset, &values);
        let bound = |state: &mut u64| -> Option<(Value, NodeId)> {
            match lcg(state) % 3 {
                0 => None,
                _ => {
                    let i = (lcg(state) % n as u64) as usize;
                    Some((values[i], NodeId(offset + i)))
                }
            }
        };
        let mut out = Vec::new();
        for _ in 0..100 {
            let above = bound(&mut seed);
            let below = bound(&mut seed);
            out.clear();
            idx.collect_rank_window(above, below, &values, &mut out);
            let want: Vec<u32> = reference
                .iter()
                .filter(|&&(v, i)| {
                    let key = (v, NodeId(offset + i as usize));
                    above.map_or(true, |b| value_order(key, b) == std::cmp::Ordering::Greater)
                        && below.map_or(true, |b| value_order(key, b) == std::cmp::Ordering::Less)
                })
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(
                sorted_ids(out.clone()),
                sorted_ids(want),
                "window {above:?}..{below:?}"
            );
        }
    }

    #[test]
    fn incremental_updates_equal_fresh_rebuild() {
        let mut seed = 0xbeefu64;
        let n = 150;
        let mut values: Vec<Value> = (0..n).map(|_| random_value(&mut seed)).collect();
        let mut incremental = ValueIndex::new(0, n);
        incremental.ensure_warm(&values);
        for round in 0..20 {
            // Mutate a random subset, telling the warm index per id.
            for _ in 0..(lcg(&mut seed) % 20) {
                let i = (lcg(&mut seed) % n as u64) as usize;
                values[i] = random_value(&mut seed);
                incremental.note_update(i as u32, values[i]);
            }
            let mut fresh = ValueIndex::new(0, n);
            fresh.ensure_warm(&values);
            let mut a = Vec::new();
            let mut b = Vec::new();
            let t = random_value(&mut seed);
            incremental.collect_greater_than(t, &values, &mut a);
            fresh.collect_greater_than(t, &values, &mut b);
            assert_eq!(
                sorted_ids(a.clone()),
                sorted_ids(b.clone()),
                "round {round}"
            );
            a.clear();
            b.clear();
            incremental.collect_less_than(t, &values, &mut a);
            fresh.collect_less_than(t, &values, &mut b);
            assert_eq!(sorted_ids(a), sorted_ids(b), "round {round}");
        }
    }

    #[test]
    fn invalidate_then_rewarm_reconciles_bulk_changes() {
        let mut seed = 0x77u64;
        let n = 120;
        let mut values: Vec<Value> = (0..n).map(|_| random_value(&mut seed)).collect();
        let mut idx = ValueIndex::new(0, n);
        idx.ensure_warm(&values);
        // Bulk change without per-id notes: must invalidate.
        for v in values.iter_mut() {
            *v = random_value(&mut seed);
        }
        idx.invalidate();
        assert!(!idx.is_warm());
        // Cold updates are no-ops and must not corrupt the next warm-up.
        idx.note_update(3, 12345);
        assert!(idx.ensure_warm(&values));
        let mut fresh = ValueIndex::new(0, n);
        fresh.ensure_warm(&values);
        let mut a = Vec::new();
        let mut b = Vec::new();
        idx.collect_at_least(values[0], &values, &mut a);
        fresh.collect_at_least(values[0], &values, &mut b);
        assert_eq!(sorted_ids(a), sorted_ids(b));
    }
}
