//! Indexed deterministic engine: O(active)-time simulation.
//!
//! [`IndexedEngine`] produces *bit-identical* behaviour to
//! [`DeterministicEngine`](crate::DeterministicEngine) — the same replies, the
//! same message counts, the same filters — while doing work proportional to
//! the nodes that actually participate instead of sweeping all `n` nodes on
//! every round of every existence run.
//!
//! ## Why the baseline is Θ(n · log n) per time step
//!
//! The protocols check for filter violations after every observation by running
//! the Lemma 3.1 existence protocol, which uses up to `⌈log₂ n⌉ + 1` rounds.
//! The baseline engine delivers each round to all `n` nodes, so even a
//! perfectly *silent* step — the overwhelmingly common case on quiet streams,
//! and the case the paper's communication bounds are built around — costs
//! `Θ(n log n)` node invocations although zero messages flow.
//!
//! ## How the indexed engine gets to O(active)
//!
//! Node state lives in a struct-of-arrays layout ([`NodeStateSoA`]) and the
//! engine maintains two indexes over it:
//!
//! * a **pending-violation set** (ordered ids), updated whenever an observation
//!   or a filter change flips a node's violation status — so a
//!   `PendingViolation` round touches exactly the violating nodes;
//! * a **radix value index** ([`ValueIndex`]): ids bucketed by a monotone
//!   compression of the value domain, maintained *incrementally* — one `O(1)`
//!   bucket move per changed observation — once the first threshold/rank
//!   round warms it. While no such round has run (the common case on pure
//!   violation-detection workloads) the index stays cold and observations pay
//!   a single branch, nothing more.
//!
//! A round visits only the nodes its predicate selects: a bitmap-guided
//! bucket walk plus `O(active)` coin flips, instead of `O(n)` deliveries.
//!
//! ## Why skipping inactive nodes is exact, not approximate
//!
//! A `SimNode` draws from its RNG in exactly one place: the
//! `node::existence_coin` flip, and only *after* its predicate evaluated to
//! true. A node whose predicate is false returns without touching its RNG, so
//! not visiting it at all leaves its random stream — and therefore every
//! future decision — bit-for-bit unchanged. The indexed engine flips the
//! identical coin (same function, same per-node RNG seeded by
//! `node::node_seed`) for the identical set of nodes, which is why
//! `tests/indexed_differential.rs` can assert full `CommStats` equality
//! against the baseline over randomized schedules.

use crate::network::Network;
use crate::node::{existence_coin, node_seed, node_seed_gen};
use crate::value_index::ValueIndex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::rule::filter_for;
use topk_model::soa::NodeStateSoA;

/// Indexed single-threaded engine (see module documentation).
#[derive(Debug, Clone)]
pub struct IndexedEngine {
    state: NodeStateSoA,
    /// Last broadcast parameters. `SimNode` stores these per node, but they are
    /// only ever set by a broadcast, so one shared copy is exactly equivalent.
    params: Option<FilterParams>,
    rngs: Vec<ChaCha8Rng>,
    /// Ids of nodes with a pending violation, in ascending id order (the reply
    /// order of the baseline engine).
    pending_ids: BTreeSet<usize>,
    /// Radix value index for threshold/rank predicates: warmed by the first
    /// such round, then maintained per observation (see `crate::value_index`).
    index: ValueIndex,
    /// Number of full index builds so far — observable via
    /// [`IndexedEngine::index_rebuilds`] so tests can pin "one protocol round
    /// never rebuilds twice".
    index_rebuilds: u64,
    /// Scratch for the ids active in the current round (reused, never shrunk).
    scratch_ids: Vec<u32>,
    meter: CostMeter,
    /// Retained for reseeding joining nodes from `(master seed, id, generation)`.
    master_seed: u64,
    population: Population,
}

impl IndexedEngine {
    /// Creates an engine with `n` nodes whose RNGs are derived from
    /// `master_seed` exactly like the other engines'.
    ///
    /// ```
    /// use topk_net::{DeterministicEngine, IndexedEngine, Network};
    ///
    /// // Same seed ⇒ bit-identical behaviour, O(active) instead of Θ(n).
    /// let mut fast = IndexedEngine::new(64, 7);
    /// let mut reference = DeterministicEngine::new(64, 7);
    /// let row: Vec<u64> = (0..64).collect();
    /// fast.advance_time(&row);
    /// reference.advance_time(&row);
    /// assert_eq!(fast.stats(), reference.stats());
    /// ```
    pub fn new(n: usize, master_seed: u64) -> IndexedEngine {
        IndexedEngine {
            state: NodeStateSoA::new(n),
            params: None,
            rngs: NodeId::all(n)
                .map(|id| ChaCha8Rng::seed_from_u64(node_seed(master_seed, id)))
                .collect(),
            pending_ids: BTreeSet::new(),
            index: ValueIndex::new(0, n),
            index_rebuilds: 0,
            scratch_ids: Vec::new(),
            meter: CostMeter::new(),
            master_seed,
            population: Population::new(n),
        }
    }

    /// Number of nodes whose value currently violates their filter (free
    /// inspection, useful for harnesses and tests).
    pub fn pending_count(&self) -> usize {
        self.pending_ids.len()
    }

    /// Number of full value-index builds so far. A threshold/rank round warms
    /// the index at most once per `collect_active` dispatch; repeated rounds
    /// without intervening bulk invalidation reuse the warm index, so this
    /// counter should climb far slower than the round count.
    pub fn index_rebuilds(&self) -> u64 {
        self.index_rebuilds
    }

    /// Updates the pending-violation index entry of node `i` after a mutation
    /// whose before/after flags are known. The set is only touched on a
    /// transition — the hot path (a value churns but stays inside its filter)
    /// costs two array reads, no tree operation.
    #[inline]
    fn note_pending(&mut self, i: usize, was: bool, now: bool) {
        if was != now {
            if now {
                self.pending_ids.insert(i);
            } else {
                self.pending_ids.remove(&i);
            }
        }
    }

    /// Records a new observation for node `i` and maintains both the pending
    /// index and (when warm) the value index.
    #[inline]
    fn apply_value(&mut self, i: usize, v: Value) {
        let was = self.state.pending(i).is_some();
        let now = self.state.set_value(i, v).is_some();
        self.note_pending(i, was, now);
        self.index.note_update(i as u32, v);
    }

    /// Applies a filter to node `i` and maintains the pending index.
    fn apply_filter(&mut self, i: usize, filter: Filter) {
        let was = self.state.pending(i).is_some();
        let now = self.state.set_filter(i, filter).is_some();
        self.note_pending(i, was, now);
    }

    /// Derives and applies the filter of node `i` from its group and the last
    /// broadcast parameters (the `SimNode` group/params rule). Without params
    /// the filter — and therefore the violation status — is unchanged.
    fn rederive_filter(&mut self, i: usize) {
        if let Some(p) = self.params {
            let f = filter_for(self.state.group(i), &p);
            self.apply_filter(i, f);
        }
    }

    /// Fills `scratch_ids` with the ids of all nodes satisfying `predicate`.
    ///
    /// `PendingViolation` ids come out in ascending id order; threshold/rank
    /// ids come out in bucket order (callers sort the replies by sender
    /// afterwards). The index warm-up is hoisted to a single dispatch point —
    /// one round can warm the index at most once, and `index_rebuilds` counts
    /// the builds so a test can pin that.
    fn collect_active(&mut self, predicate: ExistencePredicate) {
        self.scratch_ids.clear();
        if !matches!(predicate, ExistencePredicate::PendingViolation)
            && self.index.ensure_warm(self.state.values())
        {
            self.index_rebuilds += 1;
        }
        match predicate {
            ExistencePredicate::PendingViolation => {
                self.scratch_ids
                    .extend(self.pending_ids.iter().map(|&i| i as u32));
            }
            ExistencePredicate::GreaterThan(t) => {
                self.index
                    .collect_greater_than(t, self.state.values(), &mut self.scratch_ids);
            }
            ExistencePredicate::AtLeast(t) => {
                self.index
                    .collect_at_least(t, self.state.values(), &mut self.scratch_ids);
            }
            ExistencePredicate::LessThan(t) => {
                self.index
                    .collect_less_than(t, self.state.values(), &mut self.scratch_ids);
            }
            ExistencePredicate::RankWindow { above, below } => {
                self.index.collect_rank_window(
                    above,
                    below,
                    self.state.values(),
                    &mut self.scratch_ids,
                );
            }
        }
    }
}

impl Network for IndexedEngine {
    fn n(&self) -> usize {
        self.state.len()
    }

    fn advance_time(&mut self, values: &[Value]) {
        assert_eq!(
            values.len(),
            self.state.len(),
            "one observation per node required"
        );
        for (i, &v) in values.iter().enumerate() {
            // Dead slots stop receiving workload observations (they hold 0, so
            // the masked value never differs and the slot is simply skipped).
            let v = if self.population.is_live(NodeId(i)) {
                v
            } else {
                0
            };
            if self.state.value(i) != v {
                self.apply_value(i, v);
            }
        }
        self.meter.record_time_step();
    }

    fn advance_time_sparse(&mut self, changes: &[(NodeId, Value)]) {
        for &(node, v) in changes {
            let i = node.index();
            let v = if self.population.is_live(node) { v } else { 0 };
            if self.state.value(i) != v {
                self.apply_value(i, v);
            }
        }
        self.meter.record_time_step();
    }

    fn apply_membership(&mut self, events: &[MembershipEvent]) {
        for &event in events {
            match event {
                MembershipEvent::Leave(node) => {
                    self.population.apply(event);
                    let i = node.index();
                    // The leaver observes 0; skipping the write when the value
                    // is already 0 leaves the pending invariant untouched.
                    if self.state.value(i) != 0 {
                        self.apply_value(i, 0);
                    }
                }
                MembershipEvent::Join(node) => {
                    let generation = self.population.apply(event);
                    let i = node.index();
                    let group = self.state.group(i);
                    let filter = self.state.filter(i);
                    let was = self.state.pending(i).is_some();
                    // `reset_node` bypasses `apply_value`, so the value index
                    // learns about the slot's reset-to-0 here.
                    if self.state.value(i) != 0 {
                        self.index.note_update(i as u32, 0);
                    }
                    self.state.reset_node(i);
                    self.note_pending(i, was, false);
                    self.rngs[i] = ChaCha8Rng::seed_from_u64(node_seed_gen(
                        self.master_seed,
                        node,
                        generation,
                    ));
                    // Recovery replay of the slot's current group and filter,
                    // exactly as the baseline engine charges it.
                    self.meter.push_label(ProtocolLabel::Recovery);
                    self.assign_group(node, group);
                    self.assign_filter(node, filter);
                    self.meter.pop_label();
                }
            }
        }
    }

    fn broadcast_params(&mut self, params: FilterParams) {
        self.meter.record(MessageKind::Broadcast);
        self.params = Some(params);
        for i in 0..self.state.len() {
            let f = filter_for(self.state.group(i), &params);
            self.apply_filter(i, f);
        }
    }

    fn assign_group(&mut self, node: NodeId, group: NodeGroup) {
        self.meter.record(MessageKind::DownstreamUnicast);
        self.state.set_group(node.index(), group);
        self.rederive_filter(node.index());
    }

    fn broadcast_group(&mut self, group: NodeGroup) {
        self.meter.record(MessageKind::Broadcast);
        for i in 0..self.state.len() {
            self.state.set_group(i, group);
            self.rederive_filter(i);
        }
    }

    fn assign_filter(&mut self, node: NodeId, filter: Filter) {
        self.meter.record(MessageKind::DownstreamUnicast);
        self.apply_filter(node.index(), filter);
    }

    fn probe(&mut self, node: NodeId) -> Value {
        self.meter.record(MessageKind::DownstreamUnicast);
        self.meter.record(MessageKind::Upstream);
        self.state.value(node.index())
    }

    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    ) {
        self.meter.record_round();
        self.collect_active(predicate);
        replies.clear();
        for idx in 0..self.scratch_ids.len() {
            let i = self.scratch_ids[idx] as usize;
            if !existence_coin(&mut self.rngs[i], round, population) {
                continue;
            }
            let node = NodeId(i);
            let value = self.state.value(i);
            replies.push(match (predicate, self.state.pending(i)) {
                (ExistencePredicate::PendingViolation, Some(direction)) => {
                    NodeMessage::ViolationReport {
                        node,
                        value,
                        direction,
                    }
                }
                _ => NodeMessage::ExistenceResponse { node, value },
            });
        }
        // Threshold/rank actives were visited in radix-bucket order; the
        // baseline replies in node-id order. (Per-node RNG streams are
        // independent, so the flip order does not matter — only the active
        // *set* and the reply order do.)
        if !matches!(predicate, ExistencePredicate::PendingViolation) {
            replies.sort_unstable_by_key(NodeMessage::sender);
        }
        self.meter
            .record_many(MessageKind::Upstream, replies.len() as u64);
    }

    fn end_existence_run(&mut self) {
        // Nodes hold no per-run state (the round schedule is predetermined), so
        // only the broadcast is charged — same as the baseline, where every
        // node's handler is a no-op for this message.
        self.meter.record(MessageKind::Broadcast);
    }

    fn meter(&mut self) -> &mut CostMeter {
        &mut self.meter
    }

    fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    fn peek_value(&self, node: NodeId) -> Value {
        self.state.value(node.index())
    }

    fn peek_filter(&self, node: NodeId) -> Filter {
        self.state.filter(node.index())
    }

    fn peek_group(&self, node: NodeId) -> NodeGroup {
        self.state.group(node.index())
    }

    fn peek_filters_into(&self, out: &mut Vec<Filter>) {
        out.clear();
        out.extend(self.state.filters().map(|(_, f)| f));
    }

    fn peek_values_into(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend_from_slice(self.state.values());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicEngine;

    #[test]
    fn basic_flow_matches_baseline_semantics() {
        let mut net = IndexedEngine::new(5, 1);
        net.advance_time(&[10, 20, 30, 40, 50]);
        net.broadcast_params(FilterParams::Separator { lo: 25, hi: 25 });
        net.assign_filter(NodeId(0), Filter::at_least(40));
        net.assign_group(NodeId(1), NodeGroup::Upper);
        assert_eq!(net.probe(NodeId(4)), 50);
        let stats = net.stats();
        assert_eq!(stats.messages_of_kind(MessageKind::Broadcast), 1);
        assert_eq!(stats.messages_of_kind(MessageKind::DownstreamUnicast), 3);
        assert_eq!(stats.messages_of_kind(MessageKind::Upstream), 1);
        assert_eq!(stats.time_steps, 1);
        // Node 1 became Upper under the separator rule: filter [25, ∞).
        assert_eq!(net.peek_filter(NodeId(1)), Filter::at_least(25));
        assert_eq!(net.peek_filter(NodeId(2)), Filter::at_most(25));
    }

    #[test]
    fn pending_index_tracks_violations() {
        let mut net = IndexedEngine::new(4, 9);
        net.advance_time(&[10, 20, 30, 40]);
        assert_eq!(net.pending_count(), 0);
        net.assign_filter(NodeId(3), Filter::at_most(35));
        net.assign_filter(NodeId(0), Filter::at_least(15));
        assert_eq!(net.pending_count(), 2);
        let replies = net.existence_round(10, 4, ExistencePredicate::PendingViolation);
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].sender(), NodeId(0)); // id order
        assert_eq!(replies[1].sender(), NodeId(3));
        net.assign_filter(NodeId(0), Filter::FULL);
        net.advance_time(&[10, 20, 30, 20]);
        assert_eq!(net.pending_count(), 0);
        assert!(net
            .existence_round(10, 4, ExistencePredicate::PendingViolation)
            .is_empty());
    }

    #[test]
    fn threshold_predicates_use_the_value_index() {
        let mut net = IndexedEngine::new(6, 3);
        net.advance_time(&[5, 40, 40, 10, 99, 40]);
        let ids = |replies: Vec<NodeMessage>| -> Vec<usize> {
            replies.iter().map(|r| r.sender().index()).collect()
        };
        // Probability-1 rounds (2^round >= population).
        let r = net.existence_round(10, 6, ExistencePredicate::GreaterThan(40));
        assert_eq!(ids(r), vec![4]);
        let r = net.existence_round(10, 6, ExistencePredicate::AtLeast(40));
        assert_eq!(ids(r), vec![1, 2, 4, 5]);
        let r = net.existence_round(10, 6, ExistencePredicate::LessThan(10));
        assert_eq!(ids(r), vec![0]);
        // Rank window strictly between (10, #3) and (40, #1): nodes holding 40
        // with id > 1 (smaller id = higher rank, so #2 and #5 rank below #1).
        let r = net.existence_round(
            10,
            6,
            ExistencePredicate::RankWindow {
                above: Some((10, NodeId(3))),
                below: Some((40, NodeId(1))),
            },
        );
        assert_eq!(ids(r), vec![2, 5]);
        // Inverted window selects nothing (and must not panic).
        let r = net.existence_round(
            10,
            6,
            ExistencePredicate::RankWindow {
                above: Some((99, NodeId(4))),
                below: Some((5, NodeId(0))),
            },
        );
        assert!(r.is_empty());
    }

    #[test]
    fn value_index_is_rebuilt_after_observations() {
        let mut net = IndexedEngine::new(3, 3);
        net.advance_time(&[1, 2, 3]);
        assert_eq!(
            net.existence_round(10, 3, ExistencePredicate::GreaterThan(2))
                .len(),
            1
        );
        net.advance_time(&[4, 5, 0]);
        let r = net.existence_round(10, 3, ExistencePredicate::GreaterThan(2));
        let mut ids: Vec<usize> = r.iter().map(|m| m.sender().index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn one_round_never_rebuilds_the_index_twice() {
        let mut net = IndexedEngine::new(16, 5);
        net.advance_time(&(0..16).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(net.index_rebuilds(), 0, "cold until a threshold round");
        // A violation-detection round must not warm the index at all.
        net.existence_round(10, 16, ExistencePredicate::PendingViolation);
        assert_eq!(net.index_rebuilds(), 0);
        // The first threshold round warms it exactly once, even though the
        // dispatch serves four different predicate shapes.
        net.existence_round(10, 16, ExistencePredicate::GreaterThan(20));
        assert_eq!(net.index_rebuilds(), 1);
        // Further rounds of every shape reuse the warm index: no rebuild.
        net.existence_round(10, 16, ExistencePredicate::AtLeast(9));
        net.existence_round(10, 16, ExistencePredicate::LessThan(30));
        net.existence_round(
            10,
            16,
            ExistencePredicate::RankWindow {
                above: Some((6, NodeId(2))),
                below: None,
            },
        );
        assert_eq!(net.index_rebuilds(), 1);
        // Observations update the warm index incrementally — still no rebuild.
        net.advance_time(&(0..16).map(|i| i * 5).collect::<Vec<_>>());
        net.existence_round(10, 16, ExistencePredicate::GreaterThan(20));
        assert_eq!(net.index_rebuilds(), 1);
    }

    #[test]
    fn interleaved_queries_and_observations_match_baseline() {
        // Warm/cold transitions and incremental maintenance under an
        // adversarial interleaving must stay bit-identical to the baseline.
        let mut base = DeterministicEngine::new(40, 77);
        let mut indexed = IndexedEngine::new(40, 77);
        let mut x = 1u64;
        for step in 0..60u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(step);
            let row: Vec<u64> = (0..40).map(|i| (x >> (i % 13)) % 500).collect();
            base.advance_time(&row);
            indexed.advance_time(&row);
            let predicate = match step % 5 {
                0 => ExistencePredicate::PendingViolation,
                1 => ExistencePredicate::GreaterThan(x % 500),
                2 => ExistencePredicate::AtLeast(x % 500),
                3 => ExistencePredicate::LessThan(x % 500),
                _ => ExistencePredicate::RankWindow {
                    above: Some((x % 500, NodeId((x % 40) as usize))),
                    below: None,
                },
            };
            let a = base.existence_round(10, 40, predicate);
            let b = indexed.existence_round(10, 40, predicate);
            assert_eq!(a, b, "step {step}");
        }
        assert_eq!(base.stats(), indexed.stats());
        assert_eq!(base.peek_values(), indexed.peek_values());
    }

    #[test]
    fn sparse_advance_equals_dense_advance() {
        let mut dense = IndexedEngine::new(4, 7);
        let mut sparse = IndexedEngine::new(4, 7);
        dense.advance_time(&[1, 2, 3, 4]);
        sparse.advance_time(&[1, 2, 3, 4]);
        dense.advance_time(&[1, 9, 3, 0]);
        sparse.advance_time_sparse(&[(NodeId(1), 9), (NodeId(3), 0)]);
        assert_eq!(dense.peek_values(), sparse.peek_values());
        assert_eq!(dense.stats(), sparse.stats());
        let a = dense.existence_round(10, 4, ExistencePredicate::GreaterThan(2));
        let b = sparse.existence_round(10, 4, ExistencePredicate::GreaterThan(2));
        assert_eq!(a, b);
    }

    #[test]
    fn matches_baseline_on_a_scripted_run() {
        let script = |net: &mut dyn Network| {
            net.advance_time(&[3, 1, 4, 1, 5, 9, 2, 6]);
            net.assign_group(NodeId(5), NodeGroup::Upper);
            net.broadcast_params(FilterParams::Separator { lo: 5, hi: 5 });
            let mut found = Vec::new();
            for round in 0..=3 {
                let r = net.existence_round(round, 8, ExistencePredicate::PendingViolation);
                if !r.is_empty() {
                    found = r;
                    net.end_existence_run();
                    break;
                }
            }
            net.advance_time(&[3, 1, 4, 1, 5, 9, 2, 4]);
            let max = net.existence_round(10, 8, ExistencePredicate::AtLeast(9));
            (found, max, net.stats())
        };
        let mut base = DeterministicEngine::new(8, 1234);
        let mut indexed = IndexedEngine::new(8, 1234);
        let (f_base, m_base, s_base) = script(&mut base);
        let (f_idx, m_idx, s_idx) = script(&mut indexed);
        assert_eq!(f_base, f_idx);
        assert_eq!(m_base, m_idx);
        assert_eq!(s_base, s_idx);
        assert_eq!(base.peek_filters(), indexed.peek_filters());
        assert_eq!(base.peek_values(), indexed.peek_values());
    }
}
