//! Fault-injection transport: any engine, wrapped in a deterministic
//! unreliable network.
//!
//! [`FaultyTransport`] implements [`Network`] over any inner engine and
//! executes a [`FaultSpec`] — seed-driven message drop, per-round latency,
//! reply reordering, and node crash/rejoin — at the `Network` API boundary.
//! Because every engine behind that boundary is bit-identical, the fault
//! layer composes with all of them: the same spec over
//! [`DeterministicEngine`](crate::DeterministicEngine) and over
//! [`IndexedEngine`](crate::IndexedEngine) produces identical replies,
//! identical `CommStats` and identical [`FaultStats`]
//! (`tests/indexed_differential.rs` proves it over random schedules).
//!
//! ## The two hard contracts
//!
//! **Zero-fault transparency.** With [`FaultSpec::none`] every method is a
//! verbatim forward that consumes no randomness, so a wrapped engine stays
//! bit-identical to the unwrapped engine — the fault layer cannot fork the
//! bit-identity battery.
//!
//! **Determinism under faults.** All fault decisions come from one dedicated
//! ChaCha8 stream seeded from [`FaultSpec::seed`], disjoint from the per-node
//! protocol streams. Same spec + same engine seed + same schedule ⇒ same run,
//! bit for bit. Faults are experiments, not flakiness.
//!
//! ## Fault semantics (normative text in `docs/FAULTS.md`)
//!
//! * The broadcast channel is reliable; a rejoining node replays missed
//!   broadcasts, so parameter/group broadcasts are never stale. Only per-node
//!   unicast state (filters and groups assigned while a node was down) can
//!   rot — and the rejoin handshake re-syncs exactly that.
//! * Lost messages are charged: the model pays for "sent", not for
//!   "delivered". The single exception is a *crashed* node's would-be
//!   existence replies — a down node sends nothing, so the wrapper retracts
//!   the inner engine's charge for them ([`CostMeter::retract`]).
//! * Delayed existence replies surface in a later round of the *same* run;
//!   leftovers are discarded (and counted) when the run ends, so a reply can
//!   never answer a predicate the server is no longer asking about.
//! * A crashed node observes nothing: its last delivered value freezes, and
//!   the values it missed are re-delivered as one catch-up observation when
//!   it rejoins — after the recovery replay of group and filter, so a
//!   rejoined node can never report a violation against a stale filter.
//! * Probes retry up to [`PROBE_ATTEMPTS`] times (each attempt charged),
//!   then deterministically fall back to the server's last known value —
//!   a dropped reply degrades to a stale read, never a hang.

use crate::network::Network;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::rule::filter_for;
use topk_model::soa::NodeStateSoA;

/// How often the server sends a probe before giving up and falling back to
/// its last known value for the node. Every attempt is charged one
/// downstream unicast (plus one upstream if the node answered and the reply
/// was lost), so the fallback is visible in the degradation measurements.
pub const PROBE_ATTEMPTS: u32 = 3;

/// Sentinel outage length for scripted crashes ([`FaultyTransport::force_crash`]):
/// the node stays down until [`FaultyTransport::force_rejoin`].
const SCRIPTED: u64 = u64::MAX;

/// A [`Network`] wrapper executing a deterministic fault plan
/// (see the module docs).
pub struct FaultyTransport<N: Network> {
    inner: N,
    spec: FaultSpec,
    /// The fault-plan RNG stream; never touched when the plan is inactive.
    rng: ChaCha8Rng,
    /// Whether any fault machinery is engaged (non-identity spec, or a
    /// scripted crash was injected). Inactive ⇒ every call is a pure forward.
    active: bool,
    /// Server-intent mirror of filters/groups — what each node *should* have,
    /// i.e. the rejoin replay target. Tracked even while inactive so scripted
    /// churn can engage mid-run.
    mirror: NodeStateSoA,
    params: Option<FilterParams>,
    /// The value each node should currently observe (crashes freeze the
    /// node's real value below this).
    intended: Vec<Value>,
    /// Remaining down-steps per node; `None` = up.
    down: Vec<Option<u64>>,
    down_count: usize,
    /// Nodes that rejoined since the last observation was delivered; they
    /// need a catch-up delivery of their intended value.
    rejoined_pending: Vec<usize>,
    /// Existence-run tracking: the last round seen (a non-increasing round
    /// starts a new run) and the delayed replies of the current run as
    /// `(due_round, reply)` in send order.
    last_round: Option<u32>,
    delayed: Vec<(u32, NodeMessage)>,
    stats: FaultStats,
    scratch_row: Vec<Value>,
}

impl<N: Network> FaultyTransport<N> {
    /// Wraps `inner` under the fault plan `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is malformed (see [`FaultSpec::validate`]).
    pub fn new(inner: N, spec: FaultSpec) -> FaultyTransport<N> {
        spec.validate();
        let n = inner.n();
        let active = !spec.is_none();
        let mut t = FaultyTransport {
            rng: ChaCha8Rng::seed_from_u64(spec.seed),
            active,
            mirror: NodeStateSoA::new(n),
            params: None,
            intended: Vec::new(),
            down: vec![None; n],
            down_count: 0,
            rejoined_pending: Vec::new(),
            last_round: None,
            delayed: Vec::new(),
            stats: FaultStats::default(),
            scratch_row: Vec::new(),
            inner,
            spec,
        };
        if active {
            t.intended = t.inner.peek_values();
        }
        t
    }

    /// The fault plan in force.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Counters of what the plan actually did so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.index()].is_some()
    }

    /// Read access to the wrapped engine (tests inspect real node state
    /// through this, as opposed to the server-intent `peek_*` mirror).
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// Mutable access to the wrapped engine.
    pub fn inner_mut(&mut self) -> &mut N {
        &mut self.inner
    }

    /// Unwraps the transport, returning the inner engine.
    pub fn into_inner(self) -> N {
        self.inner
    }

    /// Scripted churn: crashes `node` immediately, with no automatic rejoin —
    /// the node stays down until [`FaultyTransport::force_rejoin`]. Engages
    /// the fault machinery even under [`FaultSpec::none`] (unit tests script
    /// exact crash/rejoin sequences this way; the seeded plan drives the same
    /// code paths probabilistically).
    ///
    /// # Panics
    ///
    /// Panics if the node is already down.
    pub fn force_crash(&mut self, node: NodeId) {
        self.engage();
        let i = node.index();
        assert!(self.down[i].is_none(), "node {node} is already down");
        self.down[i] = Some(SCRIPTED);
        self.down_count += 1;
        self.stats.crashes += 1;
    }

    /// Scripted churn: rejoins `node` immediately, replaying its group and
    /// filter (charged under [`ProtocolLabel::Recovery`]). Its catch-up
    /// observation is delivered with the next `advance_time*` call.
    ///
    /// # Panics
    ///
    /// Panics if the node is not down.
    pub fn force_rejoin(&mut self, node: NodeId) {
        let i = node.index();
        assert!(self.down[i].is_some(), "node {node} is not down");
        self.rejoin_node(i);
    }

    /// Engages the fault machinery mid-run (scripted churn on a `none` spec).
    fn engage(&mut self) {
        if !self.active {
            self.active = true;
            self.intended = self.inner.peek_values();
        }
    }

    /// One fault coin: true with probability `permille / 1000`. Consumes no
    /// randomness when the probability is 0 — a mechanism that is off leaves
    /// the fault stream untouched, so plans compose predictably.
    fn coin(&mut self, permille: u32) -> bool {
        permille > 0 && self.rng.gen_ratio(permille.min(1000), 1000)
    }

    /// Brings node `i` back up: recovery replay of the server-intent group
    /// and filter (only what actually diverged — the handshake stands in for
    /// a state-version exchange), charged as `Recovery` downstream unicasts.
    fn rejoin_node(&mut self, i: usize) {
        self.down[i] = None;
        self.down_count -= 1;
        self.stats.rejoins += 1;
        self.rejoined_pending.push(i);
        let node = NodeId(i);
        // A crashed node lost its volatile state, so the replay is
        // unconditional — the server cannot know whether the node still holds
        // its pre-crash group and filter, and `CrashSpec` promises a fresh
        // copy of both before the next observation is admitted.
        self.inner.meter().push_label(ProtocolLabel::Recovery);
        self.inner.assign_group(node, self.mirror.group(i));
        self.inner.assign_filter(node, self.mirror.filter(i));
        self.stats.recovery_messages += 2;
        self.inner.meter().pop_label();
    }

    /// Start-of-step bookkeeping: elapse outages (rejoins happen *before*
    /// the step's observation, so a rejoined node sees this step's value),
    /// then flip crash coins for the nodes that are up, in node-id order.
    fn begin_step(&mut self) {
        for i in 0..self.down.len() {
            if let Some(remaining) = self.down[i] {
                if remaining == SCRIPTED {
                    continue;
                }
                if remaining <= 1 {
                    self.rejoin_node(i);
                } else {
                    self.down[i] = Some(remaining - 1);
                }
            }
        }
        if let Some(crash) = self.spec.crash {
            for i in 0..self.down.len() {
                if self.down[i].is_some() {
                    continue;
                }
                // The coin is flipped even when the cap is reached, so the
                // fault stream depends only on the up-set, not on the cap.
                if self.coin(crash.crash_permille) && self.down_count < crash.max_down {
                    self.down[i] = Some(crash.down_steps.max(1));
                    self.down_count += 1;
                    self.stats.crashes += 1;
                }
            }
        }
    }

    /// Discards delayed replies whose existence run has ended.
    fn flush_stale(&mut self) {
        self.stats.stale_replies += self.delayed.len() as u64;
        self.delayed.clear();
    }

    /// Mirror bookkeeping for a group change (same re-derivation rule as the
    /// nodes and the remote engine's mirror: the filter follows the group
    /// only once parameters were broadcast).
    fn mirror_group(&mut self, i: usize, group: NodeGroup) {
        self.mirror.set_group(i, group);
        if let Some(p) = self.params {
            self.mirror.set_filter(i, filter_for(group, &p));
        }
    }

    /// Whether a downstream unicast to `node` is lost (crashed receiver, or
    /// the drop coin fires). Charges the lost message — it was sent.
    fn unicast_lost(&mut self, node: NodeId) -> bool {
        if self.down[node.index()].is_some() {
            self.inner.meter().record(MessageKind::DownstreamUnicast);
            self.stats.dropped_downstream += 1;
            return true;
        }
        if self.coin(self.spec.drop_downstream_permille) {
            self.inner.meter().record(MessageKind::DownstreamUnicast);
            self.stats.dropped_downstream += 1;
            return true;
        }
        false
    }
}

impl<N: Network> Network for FaultyTransport<N> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn advance_time(&mut self, values: &[Value]) {
        if !self.active {
            return self.inner.advance_time(values);
        }
        assert_eq!(values.len(), self.n(), "one observation per node required");
        self.begin_step();
        self.rejoined_pending.clear(); // the full row is the catch-up
        self.intended.clear();
        self.intended.extend_from_slice(values);
        if self.down_count == 0 {
            return self.inner.advance_time(values);
        }
        // Down nodes observe nothing: freeze them at their current value.
        self.scratch_row.clear();
        self.scratch_row.extend_from_slice(values);
        for i in 0..self.down.len() {
            if self.down[i].is_some() {
                self.scratch_row[i] = self.inner.peek_value(NodeId(i));
            }
        }
        let row = std::mem::take(&mut self.scratch_row);
        self.inner.advance_time(&row);
        self.scratch_row = row;
    }

    fn advance_time_sparse(&mut self, changes: &[(NodeId, Value)]) {
        if !self.active {
            return self.inner.advance_time_sparse(changes);
        }
        self.begin_step();
        for &(node, v) in changes {
            self.intended[node.index()] = v;
        }
        // Withhold changes addressed to down nodes; append a catch-up entry
        // for every node that rejoined since the last step (last-wins keeps
        // it correct even if the node also appears in `changes`).
        let mut delivered: Vec<(NodeId, Value)> = changes
            .iter()
            .filter(|(node, _)| self.down[node.index()].is_none())
            .copied()
            .collect();
        for i in self.rejoined_pending.drain(..) {
            delivered.push((NodeId(i), self.intended[i]));
        }
        self.inner.advance_time_sparse(&delivered);
    }

    fn apply_membership(&mut self, events: &[MembershipEvent]) {
        // Membership is an environment change, not transport traffic: the
        // events are forwarded verbatim and consume no fault randomness (the
        // zero-fault transparency contract extends to churn). The inner
        // engine performs the join replay on its reliable recovery channel —
        // the same channel `rejoin_node` uses — so it is never dropped.
        //
        // Composition bookkeeping: a leaver's intended observation is 0 from
        // now on (a crashed node that left catches up to 0 on rejoin), and a
        // joiner has observed nothing yet, so its intended value is 0 until
        // the next observation is delivered.
        if self.active {
            for event in events {
                self.intended[event.node().index()] = 0;
            }
        }
        self.inner.apply_membership(events);
    }

    fn broadcast_params(&mut self, params: FilterParams) {
        // Broadcasts are reliable (see the module docs): forward verbatim,
        // mirror the derived filters as the rejoin replay target.
        self.params = Some(params);
        for i in 0..self.mirror.len() {
            let f = filter_for(self.mirror.group(i), &params);
            self.mirror.set_filter(i, f);
        }
        self.inner.broadcast_params(params);
    }

    fn assign_group(&mut self, node: NodeId, group: NodeGroup) {
        self.mirror_group(node.index(), group);
        if self.active && self.unicast_lost(node) {
            return;
        }
        self.inner.assign_group(node, group);
    }

    fn broadcast_group(&mut self, group: NodeGroup) {
        for i in 0..self.mirror.len() {
            self.mirror_group(i, group);
        }
        self.inner.broadcast_group(group);
    }

    fn assign_filter(&mut self, node: NodeId, filter: Filter) {
        self.mirror.set_filter(node.index(), filter);
        if self.active && self.unicast_lost(node) {
            return;
        }
        self.inner.assign_filter(node, filter);
    }

    fn load_query_filters(&mut self, filters: &[(NodeId, Filter)]) {
        // The load path models node-local recomputation of effective filters
        // from traffic that was already delivered and charged — it is not
        // transit, so fault injection must not touch it (a dropped load would
        // break the multi-query layer's state guarantee). Forward to the
        // inner engine verbatim, mirroring the filters as the rejoin replay
        // target.
        for &(node, filter) in filters {
            self.mirror.set_filter(node.index(), filter);
        }
        self.inner.load_query_filters(filters);
    }

    fn probe(&mut self, node: NodeId) -> Value {
        if !self.active {
            return self.inner.probe(node);
        }
        for _ in 0..PROBE_ATTEMPTS {
            if self.unicast_lost(node) {
                continue; // request lost (or receiver down): retry
            }
            let value = self.inner.probe(node);
            if self.coin(self.spec.drop_upstream_permille) {
                // The answer was sent (and charged by the inner engine) but
                // lost in transit: retry.
                self.stats.dropped_upstream += 1;
                continue;
            }
            return value;
        }
        // Out of retries: degrade to the last known value instead of
        // hanging. Free — the stale read is server-local.
        self.stats.probe_fallbacks += 1;
        self.inner.peek_value(node)
    }

    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    ) {
        if !self.active {
            return self
                .inner
                .existence_round_into(round, population, predicate, replies);
        }
        // Rounds increase strictly within a run, so a non-increasing round
        // means a new run started: in-flight replies of the old run are
        // stale and vanish.
        if self.last_round.is_some_and(|last| round <= last) {
            self.flush_stale();
        }
        self.last_round = Some(round);
        self.inner
            .existence_round_into(round, population, predicate, replies);
        // A crashed node sends nothing — strip its replies and retract the
        // inner engine's charge for them (never sent ≠ sent-but-lost).
        if self.down_count > 0 {
            let before = replies.len();
            let down = &self.down;
            replies.retain(|reply| down[reply.sender().index()].is_none());
            let stripped = (before - replies.len()) as u64;
            self.inner.meter().retract(MessageKind::Upstream, stripped);
        }
        // Per-reply drop and delay coins, in node-id (send) order.
        if self.spec.drop_upstream_permille > 0 || !self.spec.latency.is_immediate() {
            let sent = std::mem::take(replies);
            for reply in sent {
                if self.coin(self.spec.drop_upstream_permille) {
                    // Charged by the inner engine; lost in transit.
                    self.stats.dropped_upstream += 1;
                    continue;
                }
                let delay = match self.spec.latency {
                    LatencySpec::Immediate => 0,
                    LatencySpec::Fixed(d) => d,
                    LatencySpec::Uniform { lo, hi } => self.rng.gen_range(lo..=hi),
                };
                if delay == 0 {
                    replies.push(reply);
                } else {
                    self.stats.delayed_replies += 1;
                    self.delayed.push((round + delay, reply));
                }
            }
        }
        // Deliver delayed replies that are due, preserving send order.
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= round {
                replies.push(self.delayed.remove(i).1);
            } else {
                i += 1;
            }
        }
        if replies.len() > 1 && self.coin(self.spec.reorder_permille) {
            replies.shuffle(&mut self.rng);
            self.stats.reordered_rounds += 1;
        }
    }

    fn end_existence_run(&mut self) {
        self.inner.end_existence_run();
        if self.active {
            self.flush_stale();
            self.last_round = None;
        }
    }

    fn meter(&mut self) -> &mut CostMeter {
        self.inner.meter()
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    fn peek_value(&self, node: NodeId) -> Value {
        self.inner.peek_value(node)
    }

    fn peek_filter(&self, node: NodeId) -> Filter {
        self.inner.peek_filter(node)
    }

    fn peek_group(&self, node: NodeId) -> NodeGroup {
        self.inner.peek_group(node)
    }

    fn peek_filters_into(&self, out: &mut Vec<Filter>) {
        self.inner.peek_filters_into(out);
    }

    fn peek_values_into(&self, out: &mut Vec<Value>) {
        self.inner.peek_values_into(out);
    }
}

impl<N: Network> std::fmt::Debug for FaultyTransport<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("n", &self.inner.n())
            .field("spec", &self.spec)
            .field("down", &self.down_count)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicEngine;

    fn wrapped(n: usize, seed: u64, spec: FaultSpec) -> FaultyTransport<DeterministicEngine> {
        FaultyTransport::new(DeterministicEngine::new(n, seed), spec)
    }

    #[test]
    fn none_wrapper_is_bit_transparent() {
        let script = |net: &mut dyn Network| {
            net.advance_time(&[3, 14, 15, 92]);
            net.broadcast_params(FilterParams::Separator { lo: 10, hi: 10 });
            net.assign_group(NodeId(0), NodeGroup::Upper);
            net.assign_filter(NodeId(3), Filter::at_least(50));
            let p = net.probe(NodeId(1));
            let mut replies = Vec::new();
            for round in 0..3 {
                net.existence_round_into(
                    round,
                    4,
                    ExistencePredicate::PendingViolation,
                    &mut replies,
                );
                if !replies.is_empty() {
                    net.end_existence_run();
                    break;
                }
            }
            net.advance_time_sparse(&[(NodeId(2), 1)]);
            (p, replies, net.stats(), net.peek_filters())
        };
        let mut plain = DeterministicEngine::new(4, 99);
        let mut faulty = wrapped(4, 99, FaultSpec::none());
        assert_eq!(script(&mut plain), script(&mut faulty));
        assert_eq!(faulty.fault_stats(), FaultStats::default());
    }

    #[test]
    fn rejoin_replays_the_current_filter_before_observations_resume() {
        // The stale-filter guard: a filter assigned while the node was down
        // is lost, and the rejoin replay must install it before the node's
        // next observation — so the node can neither report against its
        // pre-crash filter nor miss a genuine violation of the current one.
        let mut net = wrapped(2, 7, FaultSpec::none());
        net.advance_time(&[10, 50]);
        net.assign_filter(NodeId(1), Filter::bounded(40, 60).unwrap());
        net.force_crash(NodeId(1));

        // Sent while down: charged, not delivered.
        let downstream_before = net.stats().messages_of_kind(MessageKind::DownstreamUnicast);
        net.assign_filter(NodeId(1), Filter::at_least(25));
        assert_eq!(
            net.stats().messages_of_kind(MessageKind::DownstreamUnicast),
            downstream_before + 1,
            "a lost unicast still costs one unit"
        );
        assert_eq!(
            net.inner().peek_filter(NodeId(1)),
            Filter::bounded(40, 60).unwrap(),
            "the node must not have received the new filter"
        );

        // Down nodes neither observe nor reply.
        net.advance_time(&[10, 30]);
        assert_eq!(net.inner().peek_value(NodeId(1)), 50, "value frozen");
        let upstream_before = net.stats().messages_of_kind(MessageKind::Upstream);
        let replies = net.existence_round(10, 2, ExistencePredicate::AtLeast(50));
        assert!(replies.is_empty(), "a crashed node sends nothing");
        assert_eq!(
            net.stats().messages_of_kind(MessageKind::Upstream),
            upstream_before,
            "messages a crashed node never sent must not be charged"
        );

        net.force_rejoin(NodeId(1));
        assert_eq!(
            net.inner().peek_filter(NodeId(1)),
            Filter::at_least(25),
            "rejoin must replay the server's current filter"
        );
        let fs = net.fault_stats();
        assert_eq!((fs.crashes, fs.rejoins, fs.recovery_messages), (1, 1, 2));
        assert_eq!(
            net.stats().messages_of_label(ProtocolLabel::Recovery),
            2,
            "the group + filter replay is attributed to the recovery label"
        );

        // Catch-up observation: the node now sees 30, which violates its
        // *pre-crash* filter [40, 60] but not the current one [25, ∞) — a
        // stale-filter leak would surface here as a spurious report.
        net.advance_time(&[10, 30]);
        assert_eq!(net.inner().peek_value(NodeId(1)), 30);
        let replies = net.existence_round(10, 2, ExistencePredicate::PendingViolation);
        assert!(
            replies.is_empty(),
            "no stale-filter violation may leak after rejoin: {replies:?}"
        );
        assert_eq!(net.probe(NodeId(1)), 30);
    }

    #[test]
    fn sparse_steps_deliver_catchup_values_to_rejoined_nodes() {
        let mut net = wrapped(3, 5, FaultSpec::none());
        net.advance_time(&[1, 2, 3]);
        net.force_crash(NodeId(2));
        net.advance_time_sparse(&[(NodeId(2), 77)]); // withheld
        assert_eq!(net.inner().peek_value(NodeId(2)), 3);
        net.force_rejoin(NodeId(2));
        // Nothing changed for node 2 this step, but the catch-up entry must
        // deliver the value it missed while down.
        net.advance_time_sparse(&[(NodeId(0), 9)]);
        assert_eq!(net.inner().peek_value(NodeId(2)), 77);
        assert_eq!(net.inner().peek_value(NodeId(0)), 9);
    }

    #[test]
    fn downstream_drops_are_charged_and_probes_fall_back() {
        let mut spec = FaultSpec::none();
        spec.drop_downstream_permille = 1000; // every unicast is lost
        let mut net = wrapped(2, 3, spec);
        net.advance_time(&[10, 20]);
        net.assign_filter(NodeId(0), Filter::at_least(5));
        assert_eq!(
            net.inner().peek_filter(NodeId(0)),
            Filter::FULL,
            "the assignment was lost"
        );
        let before = net.stats().messages_of_kind(MessageKind::DownstreamUnicast);
        let value = net.probe(NodeId(1));
        assert_eq!(value, 20, "fallback returns the last known value");
        let stats = net.stats();
        assert_eq!(
            stats.messages_of_kind(MessageKind::DownstreamUnicast),
            before + u64::from(PROBE_ATTEMPTS),
            "every probe attempt is charged"
        );
        assert_eq!(stats.messages_of_kind(MessageKind::Upstream), 0);
        let fs = net.fault_stats();
        assert_eq!(fs.probe_fallbacks, 1);
        assert_eq!(fs.dropped_downstream, 1 + u64::from(PROBE_ATTEMPTS));
    }

    #[test]
    fn upstream_drops_lose_replies_but_keep_the_charge() {
        let mut net = wrapped(2, 11, FaultSpec::drop_upstream(42, 1000));
        net.advance_time(&[100, 200]);
        let replies = net.existence_round(10, 2, ExistencePredicate::AtLeast(50));
        assert!(replies.is_empty(), "all replies dropped");
        assert_eq!(
            net.stats().messages_of_kind(MessageKind::Upstream),
            2,
            "both replies were sent (and charged) before being lost"
        );
        assert_eq!(net.fault_stats().dropped_upstream, 2);
        // A probe keeps retrying lost answers, then falls back.
        let before = net.stats().messages_of_kind(MessageKind::Upstream);
        assert_eq!(net.probe(NodeId(0)), 100);
        assert_eq!(
            net.stats().messages_of_kind(MessageKind::Upstream),
            before + u64::from(PROBE_ATTEMPTS)
        );
        assert_eq!(net.fault_stats().probe_fallbacks, 1);
    }

    #[test]
    fn fixed_latency_shifts_replies_into_later_rounds_of_the_same_run() {
        let mut spec = FaultSpec::none();
        spec.latency = LatencySpec::Fixed(1);
        let mut net = wrapped(2, 13, spec);
        net.advance_time(&[5, 100]);
        // Round 10: node 1 answers, but the reply is in flight for a round.
        let r0 = net.existence_round(10, 2, ExistencePredicate::AtLeast(50));
        assert!(r0.is_empty(), "the reply is delayed, not delivered");
        // Round 11 of the same run: the delayed reply surfaces (and the
        // fresh round-11 reply goes into flight in turn).
        let r1 = net.existence_round(11, 2, ExistencePredicate::AtLeast(50));
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].sender(), NodeId(1));
        // Ending the run discards the round-11 reply still in flight.
        net.end_existence_run();
        let fs = net.fault_stats();
        assert_eq!(fs.delayed_replies, 2);
        assert_eq!(fs.stale_replies, 1);
        // Both replies were sent and charged.
        assert_eq!(net.stats().messages_of_kind(MessageKind::Upstream), 2);
        // A new run starts clean: round 10 again is a fresh run.
        let r = net.existence_round(10, 2, ExistencePredicate::AtLeast(50));
        assert!(r.is_empty(), "delayed again, and no stale leftovers: {r:?}");
    }

    #[test]
    fn reordering_permutes_but_never_invents_replies() {
        let mut spec = FaultSpec::none();
        spec.reorder_permille = 1000;
        let mut shuffled_somewhere = false;
        for seed in 0..8 {
            spec.seed = seed;
            let mut net = wrapped(6, 17, spec);
            net.advance_time(&[10, 20, 30, 40, 50, 60]);
            let replies = net.existence_round(10, 6, ExistencePredicate::AtLeast(5));
            assert_eq!(replies.len(), 6);
            let mut senders: Vec<usize> = replies.iter().map(|m| m.sender().index()).collect();
            if !senders.windows(2).all(|w| w[0] <= w[1]) {
                shuffled_somewhere = true;
            }
            senders.sort_unstable();
            assert_eq!(senders, (0..6).collect::<Vec<_>>(), "a permutation");
            assert_eq!(net.fault_stats().reordered_rounds, 1);
        }
        assert!(shuffled_somewhere, "no seed produced a real reorder");
    }

    #[test]
    fn crash_cap_bounds_concurrent_outages() {
        let mut net = wrapped(5, 23, FaultSpec::crash_rejoin(1, 1000, 2, 2));
        net.advance_time(&[1; 5]);
        let down: Vec<bool> = (0..5).map(|i| net.is_down(NodeId(i))).collect();
        assert_eq!(
            down.iter().filter(|&&d| d).count(),
            2,
            "crash_permille 1000 with max_down 2 must down exactly the cap"
        );
        // Node-id order: the first two nodes crash.
        assert_eq!(down, vec![true, true, false, false, false]);
        assert_eq!(net.fault_stats().crashes, 2);
        // Two steps later they are back (and immediately re-crash-eligible,
        // so the population keeps churning at the cap).
        net.advance_time(&[1; 5]);
        net.advance_time(&[1; 5]);
        assert!(net.fault_stats().rejoins >= 2);
        assert_eq!((0..5).filter(|&i| net.is_down(NodeId(i))).count(), 2);
    }

    #[test]
    fn seeded_plans_reproduce_bit_identically() {
        let mut spec = FaultSpec::crash_rejoin(0xDEAD, 200, 2, 3);
        spec.drop_upstream_permille = 150;
        spec.drop_downstream_permille = 100;
        spec.latency = LatencySpec::Uniform { lo: 0, hi: 2 };
        spec.reorder_permille = 300;
        let run = || {
            let mut net = wrapped(8, 31, spec);
            let mut log = Vec::new();
            for step in 0..12u64 {
                let row: Vec<Value> = (0..8).map(|i| (step * 37 + i * 11) % 97 + 1).collect();
                net.advance_time(&row);
                net.assign_filter(NodeId((step % 8) as usize), Filter::at_least(step));
                for round in 0..4 {
                    let r = net.existence_round(round, 8, ExistencePredicate::AtLeast(40));
                    log.push(r);
                }
                net.end_existence_run();
                log.push(vec![NodeMessage::ValueReport {
                    node: NodeId(0),
                    value: net.probe(NodeId((step % 3) as usize)),
                }]);
            }
            (log, net.stats(), net.fault_stats(), net.peek_filters())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same spec + same seed must reproduce the run");
    }
}
