//! [`EngineKind`] and [`build_engine`] — the one place an engine is chosen.
//!
//! Six interchangeable [`Network`] implementations exist (see the crate
//! docs); before this module every harness that wanted "all of them" —
//! trace replay, the experiments CLI, the differential battery, the
//! examples — hand-rolled its own constructor `match`. [`build_engine`]
//! is the canonical factory: it fixes the configuration the differential
//! battery holds bit-identical (4 parallel shards for the sharded engine,
//! 3 TCP shard servers for the remote engine) so every caller exercises
//! the *same* six engines, not six similar ones.

use crate::fault::FaultyTransport;
use crate::network::Network;
use crate::sharded::Dispatch;
use crate::{DeterministicEngine, IndexedEngine, RemoteEngine, ShardedEngine, ThreadedEngine};
use topk_model::prelude::*;

/// The engine implementations the differential battery holds bit-identical —
/// the same six every trace can be replayed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The reference `O(n)`-per-step engine.
    Deterministic,
    /// The value-indexed engine (the single-threaded engine for large `n`).
    Indexed,
    /// The work-stealing sharded engine (4 shards, parallel dispatch).
    Sharded,
    /// The persistent-worker threaded engine.
    Threaded,
    /// [`FaultyTransport`] over the indexed engine (a no-op fault spec when
    /// no fault plan is given).
    Fault,
    /// The TCP-backed remote engine (3 shard servers over loopback).
    Remote,
}

impl EngineKind {
    /// Every kind, in battery order.
    pub const ALL: [EngineKind; 6] = [
        EngineKind::Deterministic,
        EngineKind::Indexed,
        EngineKind::Sharded,
        EngineKind::Threaded,
        EngineKind::Fault,
        EngineKind::Remote,
    ];

    /// Stable name used in reports and mismatch messages.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Deterministic => "deterministic",
            EngineKind::Indexed => "indexed",
            EngineKind::Sharded => "sharded",
            EngineKind::Threaded => "threaded",
            EngineKind::Fault => "fault",
            EngineKind::Remote => "remote",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a fresh engine of `kind` for `n` nodes seeded with `seed`.
///
/// A fault plan wraps *every* kind in a [`FaultyTransport`] executing it —
/// fault decisions are functions of the spec's own seed and the message
/// sequence, which the differential battery holds identical across engines.
/// [`EngineKind::Fault`] without a plan uses [`FaultSpec::none`], the
/// bit-transparent wrapper.
pub fn build_engine(
    kind: EngineKind,
    n: usize,
    seed: u64,
    fault: Option<&FaultSpec>,
) -> Box<dyn Network> {
    fn wrap<E: Network + 'static>(engine: E, fault: Option<&FaultSpec>) -> Box<dyn Network> {
        match fault {
            Some(spec) => Box::new(FaultyTransport::new(engine, *spec)),
            None => Box::new(engine),
        }
    }
    match kind {
        EngineKind::Deterministic => wrap(DeterministicEngine::new(n, seed), fault),
        EngineKind::Indexed => wrap(IndexedEngine::new(n, seed), fault),
        EngineKind::Sharded => wrap(
            ShardedEngine::with_dispatch(n, seed, 4, Dispatch::Parallel),
            fault,
        ),
        EngineKind::Threaded => wrap(ThreadedEngine::new(n, seed), fault),
        EngineKind::Fault => Box::new(FaultyTransport::new(
            IndexedEngine::new(n, seed),
            fault.cloned().unwrap_or(FaultSpec::none()),
        )),
        EngineKind::Remote => wrap(RemoteEngine::with_shards(n, seed, 3), fault),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_advances() {
        for kind in EngineKind::ALL {
            let mut net = build_engine(kind, 4, 7, None);
            assert_eq!(net.n(), 4, "{kind}");
            net.advance_time(&[1, 2, 3, 4]);
            assert_eq!(net.peek_values(), vec![1, 2, 3, 4], "{kind}");
            assert_eq!(net.stats().time_steps, 1, "{kind}");
        }
    }

    #[test]
    fn fault_plan_wraps_every_kind() {
        let spec = FaultSpec::none();
        for kind in [EngineKind::Deterministic, EngineKind::Fault] {
            let mut net = build_engine(kind, 3, 1, Some(&spec));
            net.advance_time(&[5, 5, 5]);
            net.assign_filter(NodeId(1), Filter::at_least(3));
            assert_eq!(net.peek_filter(NodeId(1)), Filter::at_least(3), "{kind}");
            assert_eq!(net.stats().total_messages(), 1, "{kind}");
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = EngineKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "deterministic",
                "indexed",
                "sharded",
                "threaded",
                "fault",
                "remote"
            ]
        );
    }
}
