//! The [`Network`] trait — the transport API the online protocols program against.
//!
//! Protocols in `topk-core` are written once against this trait and can then run
//! on the deterministic engine (for exact message accounting), on the threaded
//! engine (for real channel-based message passing), or on any future transport.

use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;

/// Transport and accounting interface between the server-side protocols and the
/// simulated distributed nodes.
///
/// All methods that move a message charge the engine's [`CostMeter`]; the
/// `peek_*` methods are free and exist only for validation, experiment
/// harnesses and adaptive adversaries — protocol implementations must never use
/// them to make decisions (that would be cheating the model, and the test suite
/// asserts protocols behave identically when peeks are disabled).
pub trait Network {
    /// Number of nodes `n`.
    fn n(&self) -> usize;

    /// Delivers the next observation to every node (index = node id).
    ///
    /// Observations are local and free; the engine also records one time step on
    /// the meter.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.n()`.
    fn advance_time(&mut self, values: &[Value]);

    /// Delivers observations to a *subset* of nodes; every node not listed in
    /// `changes` keeps (and conceptually re-observes) its previous value.
    ///
    /// Semantically identical to [`Network::advance_time`] with a full row in
    /// which the unlisted entries repeat the previous step — including the one
    /// recorded time step — but engines may implement it in `O(|changes|)`
    /// instead of `O(n)`. If a node appears more than once, the last entry wins.
    ///
    /// # Panics
    ///
    /// Panics if a changed node id is out of range.
    fn advance_time_sparse(&mut self, changes: &[(NodeId, Value)]) {
        let mut values = self.peek_values();
        for &(node, v) in changes {
            values[node.index()] = v;
        }
        self.advance_time(&values);
    }

    /// Applies a batch of membership events, in order (see
    /// `topk_model::membership` and the normative section of `docs/FAULTS.md`).
    ///
    /// * [`MembershipEvent::Leave`] — the slot's value collapses to `0` (as if
    ///   the node observed `0`) and the slot stops receiving workload
    ///   observations; dead slots answer probes with `0` and keep flipping
    ///   their existence coins, so RNG streams stay engine-independent. The
    ///   event itself is free: if the leaver held a top-k position, the value
    ///   drop trips its filter and the ordinary violation traffic (charged to
    ///   the protocol that resolves it) re-establishes a correct output.
    /// * [`MembershipEvent::Join`] — the slot's generation increments, its RNG
    ///   is reseeded from `(master seed, id, generation)` and its monitoring
    ///   state resets to fresh (last broadcast parameters retained); the
    ///   engine then immediately replays the slot's current group and filter
    ///   through the ordinary assignment paths under the `Recovery` label
    ///   (exactly 2 downstream unicasts per join).
    ///
    /// Every engine implements this bit-identically.
    ///
    /// # Panics
    ///
    /// Panics on a malformed schedule: joining a live slot, a dead slot
    /// leaving, or a slot id out of range.
    fn apply_membership(&mut self, events: &[MembershipEvent]);

    /// Broadcasts new filter parameters to all nodes (cost: 1 broadcast).
    fn broadcast_params(&mut self, params: FilterParams);

    /// Assigns a group to one node (cost: 1 downstream unicast). The node
    /// re-derives its filter from the group and the last broadcast parameters.
    fn assign_group(&mut self, node: NodeId, group: NodeGroup);

    /// Assigns the same group to every node (cost: 1 broadcast). Used at phase
    /// starts to reset the partition before unicasting the few exceptions.
    fn broadcast_group(&mut self, group: NodeGroup);

    /// Assigns an explicit filter to one node (cost: 1 downstream unicast).
    fn assign_filter(&mut self, node: NodeId, filter: Filter);

    /// Assigns a filter to one node *on behalf of a query* (cost: 1 downstream
    /// unicast, charged exactly like [`Network::assign_filter`]).
    ///
    /// `filter` is the node's new **effective** filter — the intersection of
    /// the bands of every query covering the node, computed by the caller
    /// (see `topk_model::Filter::intersect`). The [`QueryId`] tags the
    /// message for per-query cost attribution; the node-side semantics are
    /// identical to a plain assignment, and the default implementation *is*
    /// the plain assignment. Engines with a wire format (the remote engine)
    /// override this to put the tag on the wire when the peer negotiated
    /// wire v4, so all engines stay bit-identical in state and cost.
    fn assign_query_filter(&mut self, query: QueryId, node: NodeId, filter: Filter) {
        let _ = query;
        self.assign_filter(node, filter);
    }

    /// Pushes already-announced effective filters to nodes **free of charge**.
    ///
    /// The multi-query layer charges one unicast per *changed band* through
    /// [`Network::assign_query_filter`]; when one query's band change also
    /// shifts the effective (intersection) filter of nodes whose own bands
    /// did not change, the node can recompute the intersection locally from
    /// what it already heard — this call models that recomputation, so it
    /// moves state but records no message. The default implementation routes
    /// each pair through [`Network::assign_filter`] and retracts the charge,
    /// which keeps node-side state transitions (and RNG streams) identical
    /// on every engine.
    fn load_query_filters(&mut self, filters: &[(NodeId, Filter)]) {
        for &(node, filter) in filters {
            self.assign_filter(node, filter);
            self.meter().retract(MessageKind::DownstreamUnicast, 1);
        }
    }

    /// Probes one node for its current value (cost: 1 downstream + 1 upstream).
    fn probe(&mut self, node: NodeId) -> Value;

    /// Runs one round of the existence protocol: every node for which
    /// `predicate` holds sends a response with probability
    /// `min(1, 2^round / population)`.
    ///
    /// Cost: 1 upstream message per responding node; the round itself is
    /// accounted as one protocol round but carries no broadcast cost because the
    /// round schedule is predetermined (see the crate-level documentation).
    ///
    /// Convenience wrapper around [`Network::existence_round_into`] that
    /// allocates a fresh reply vector. Hot loops (one violation check per time
    /// step, `⌈log₂ n⌉ + 1` rounds each) should call the `_into` variant with a
    /// reused scratch buffer instead.
    fn existence_round(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
    ) -> Vec<NodeMessage> {
        let mut replies = Vec::new();
        self.existence_round_into(round, population, predicate, &mut replies);
        replies
    }

    /// Allocation-free variant of [`Network::existence_round`]: clears `replies`
    /// and fills it with the responses of this round, in node-id order.
    ///
    /// Silent rounds leave `replies` empty and perform no allocation, which is
    /// what makes a violation-free time step cheap — the engine runs
    /// `⌈log₂ n⌉ + 1` such rounds per step.
    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    );

    /// Announces the end of an existence run that produced at least one response
    /// (cost: 1 broadcast). Runs that stay silent need no announcement.
    fn end_existence_run(&mut self);

    /// Mutable access to the engine's cost meter (for protocol-phase labels).
    fn meter(&mut self) -> &mut CostMeter;

    /// Snapshot of the accumulated communication statistics.
    fn stats(&self) -> CommStats;

    /// Inspection: the value node `node` currently observes (free, not part of
    /// the model — for validation and adversaries only).
    fn peek_value(&self, node: NodeId) -> Value;

    /// Inspection: the filter node `node` currently uses (free).
    fn peek_filter(&self, node: NodeId) -> Filter;

    /// Inspection: the group node `node` currently has (free).
    fn peek_group(&self, node: NodeId) -> NodeGroup;

    /// Inspection: all filters, indexed by node id (free).
    fn peek_filters(&self) -> Vec<Filter> {
        let mut out = Vec::new();
        self.peek_filters_into(&mut out);
        out
    }

    /// Inspection: all current values, indexed by node id (free).
    fn peek_values(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.peek_values_into(&mut out);
        out
    }

    /// Borrowed-buffer variant of [`Network::peek_filters`]: clears `out` and
    /// fills it with all filters, indexed by node id. Drivers that peek every
    /// time step reuse one buffer instead of allocating per step.
    fn peek_filters_into(&self, out: &mut Vec<Filter>) {
        out.clear();
        out.extend((0..self.n()).map(|i| self.peek_filter(NodeId(i))));
    }

    /// Borrowed-buffer variant of [`Network::peek_values`]: clears `out` and
    /// fills it with all current values, indexed by node id.
    fn peek_values_into(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend((0..self.n()).map(|i| self.peek_value(NodeId(i))));
    }
}

/// Blanket helpers available on every [`Network`].
pub trait NetworkExt: Network {
    /// Assigns the same group to a list of nodes, one unicast each.
    fn assign_groups(&mut self, nodes: &[NodeId], group: NodeGroup) {
        for &node in nodes {
            self.assign_group(node, group);
        }
    }

    /// Total messages sent so far (convenience around [`Network::stats`]).
    fn total_messages(&self) -> u64 {
        self.stats().total_messages()
    }
}

impl<T: Network + ?Sized> NetworkExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicEngine;

    #[test]
    fn sparse_advance_and_buffered_peeks() {
        let mut net = DeterministicEngine::new(3, 5);
        net.advance_time(&[10, 20, 30]);
        net.advance_time_sparse(&[(NodeId(2), 99)]);
        assert_eq!(net.peek_values(), vec![10, 20, 99]);
        assert_eq!(net.stats().time_steps, 2);
        let mut values = vec![0; 17]; // stale contents must be replaced
        net.peek_values_into(&mut values);
        assert_eq!(values, vec![10, 20, 99]);
        let mut filters = Vec::new();
        net.peek_filters_into(&mut filters);
        assert_eq!(filters, vec![Filter::FULL; 3]);
        // The allocating existence_round wrapper delegates to the _into form.
        let replies = net.existence_round(
            10,
            3,
            topk_model::message::ExistencePredicate::GreaterThan(50),
        );
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].sender(), NodeId(2));
    }

    #[test]
    fn network_ext_helpers() {
        let mut net = DeterministicEngine::new(4, 1);
        net.advance_time(&[1, 2, 3, 4]);
        net.assign_groups(&[NodeId(0), NodeId(1)], NodeGroup::Upper);
        assert_eq!(net.peek_group(NodeId(0)), NodeGroup::Upper);
        assert_eq!(net.peek_group(NodeId(1)), NodeGroup::Upper);
        assert_eq!(net.peek_group(NodeId(2)), NodeGroup::Lower);
        assert_eq!(net.total_messages(), 2);
        assert_eq!(net.peek_values(), vec![1, 2, 3, 4]);
        assert_eq!(net.peek_filters().len(), 4);
    }
}
