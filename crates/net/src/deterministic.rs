//! In-process, deterministic simulation engine.
//!
//! [`DeterministicEngine`] drives all [`SimNode`] state machines by direct
//! function calls in node-id order. Given the same master seed and the same
//! sequence of transport calls it produces bit-identical node decisions and
//! therefore bit-identical message counts — the property the competitive-ratio
//! experiments rely on.

use crate::network::Network;
use crate::node::SimNode;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;

/// Deterministic single-threaded engine (see module documentation).
#[derive(Debug, Clone)]
pub struct DeterministicEngine {
    nodes: Vec<SimNode>,
    meter: CostMeter,
    /// Retained for reseeding joining nodes from `(master seed, id, generation)`.
    master_seed: u64,
    population: Population,
}

impl DeterministicEngine {
    /// Creates an engine with `n` nodes whose RNGs are derived from `master_seed`.
    ///
    /// ```
    /// use topk_net::{DeterministicEngine, Network};
    /// use topk_model::NodeId;
    ///
    /// let mut net = DeterministicEngine::new(3, 42);
    /// net.advance_time(&[10, 20, 30]);
    /// assert_eq!(net.probe(NodeId(2)), 30);
    /// assert_eq!(net.stats().total_messages(), 2); // 1 probe + 1 reply
    /// ```
    pub fn new(n: usize, master_seed: u64) -> DeterministicEngine {
        DeterministicEngine {
            nodes: NodeId::all(n)
                .map(|id| SimNode::new(id, master_seed))
                .collect(),
            meter: CostMeter::new(),
            master_seed,
            population: Population::new(n),
        }
    }

    fn deliver_unicast(&mut self, node: NodeId, msg: &ServerMessage) -> Option<NodeMessage> {
        self.meter.record(MessageKind::DownstreamUnicast);
        let reply = self.nodes[node.index()].handle(msg);
        if reply.is_some() {
            self.meter.record(MessageKind::Upstream);
        }
        reply
    }
}

impl Network for DeterministicEngine {
    fn n(&self) -> usize {
        self.nodes.len()
    }

    fn advance_time(&mut self, values: &[Value]) {
        assert_eq!(
            values.len(),
            self.nodes.len(),
            "one observation per node required"
        );
        for (i, (node, &v)) in self.nodes.iter_mut().zip(values).enumerate() {
            // Dead slots stop receiving workload observations: they observe 0.
            node.observe(if self.population.is_live(NodeId(i)) {
                v
            } else {
                0
            });
        }
        self.meter.record_time_step();
    }

    fn advance_time_sparse(&mut self, changes: &[(NodeId, Value)]) {
        // Unchanged nodes re-observing their previous value is a no-op (same
        // value, same filter, same pending flag), so only the changed nodes need
        // a call.
        for &(node, v) in changes {
            let v = if self.population.is_live(node) { v } else { 0 };
            self.nodes[node.index()].observe(v);
        }
        self.meter.record_time_step();
    }

    fn apply_membership(&mut self, events: &[MembershipEvent]) {
        for &event in events {
            match event {
                MembershipEvent::Leave(node) => {
                    self.population.apply(event);
                    // The leaver's stream ends: it observes 0, which trips its
                    // filter if the slot held a top-k position (free — the
                    // violation traffic that follows is charged normally).
                    self.nodes[node.index()].observe(0);
                }
                MembershipEvent::Join(node) => {
                    let generation = self.population.apply(event);
                    let i = node.index();
                    let group = self.nodes[i].group();
                    let filter = self.nodes[i].filter();
                    self.nodes[i].rejoin_generation(self.master_seed, generation);
                    // Bring the joiner up to date: replay the slot's current
                    // group and filter under the Recovery label (2 unicasts),
                    // mirroring the crash-rejoin replay of FaultyTransport.
                    self.meter.push_label(ProtocolLabel::Recovery);
                    self.assign_group(node, group);
                    self.assign_filter(node, filter);
                    self.meter.pop_label();
                }
            }
        }
    }

    fn broadcast_params(&mut self, params: FilterParams) {
        self.meter.record(MessageKind::Broadcast);
        let msg = ServerMessage::BroadcastParams(params);
        for node in &mut self.nodes {
            let reply = node.handle(&msg);
            debug_assert!(reply.is_none(), "parameter broadcasts are not answered");
        }
    }

    fn assign_group(&mut self, node: NodeId, group: NodeGroup) {
        let reply = self.deliver_unicast(node, &ServerMessage::AssignGroup(group));
        debug_assert!(reply.is_none());
    }

    fn broadcast_group(&mut self, group: NodeGroup) {
        self.meter.record(MessageKind::Broadcast);
        let msg = ServerMessage::BroadcastGroup(group);
        for node in &mut self.nodes {
            let reply = node.handle(&msg);
            debug_assert!(reply.is_none(), "group broadcasts are not answered");
        }
    }

    fn assign_filter(&mut self, node: NodeId, filter: Filter) {
        let reply = self.deliver_unicast(node, &ServerMessage::AssignFilter(filter));
        debug_assert!(reply.is_none());
    }

    fn probe(&mut self, node: NodeId) -> Value {
        match self.deliver_unicast(node, &ServerMessage::Probe) {
            Some(NodeMessage::ValueReport { value, .. }) => value,
            other => unreachable!("probe must be answered with a value report, got {other:?}"),
        }
    }

    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    ) {
        self.meter.record_round();
        let msg = ServerMessage::ExistenceRound {
            round,
            population,
            predicate,
        };
        replies.clear();
        for node in &mut self.nodes {
            if let Some(reply) = node.handle(&msg) {
                self.meter.record(MessageKind::Upstream);
                replies.push(reply);
            }
        }
    }

    fn end_existence_run(&mut self) {
        self.meter.record(MessageKind::Broadcast);
        let msg = ServerMessage::EndExistenceRun;
        for node in &mut self.nodes {
            let reply = node.handle(&msg);
            debug_assert!(reply.is_none());
        }
    }

    fn meter(&mut self) -> &mut CostMeter {
        &mut self.meter
    }

    fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    fn peek_value(&self, node: NodeId) -> Value {
        self.nodes[node.index()].value()
    }

    fn peek_filter(&self, node: NodeId) -> Filter {
        self.nodes[node.index()].filter()
    }

    fn peek_group(&self, node: NodeId) -> NodeGroup {
        self.nodes[node.index()].group()
    }

    fn peek_filters_into(&self, out: &mut Vec<Filter>) {
        out.clear();
        out.extend(self.nodes.iter().map(SimNode::filter));
    }

    fn peek_values_into(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.nodes.iter().map(SimNode::value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_broadcasts_and_unicasts() {
        let mut net = DeterministicEngine::new(5, 1);
        net.advance_time(&[10, 20, 30, 40, 50]);
        net.broadcast_params(FilterParams::Separator { lo: 25, hi: 25 });
        net.assign_filter(NodeId(0), Filter::at_least(40));
        net.assign_group(NodeId(1), NodeGroup::Upper);
        let v = net.probe(NodeId(4));
        assert_eq!(v, 50);
        let stats = net.stats();
        assert_eq!(stats.messages_of_kind(MessageKind::Broadcast), 1);
        assert_eq!(stats.messages_of_kind(MessageKind::DownstreamUnicast), 3);
        assert_eq!(stats.messages_of_kind(MessageKind::Upstream), 1);
        assert_eq!(stats.time_steps, 1);
    }

    #[test]
    fn broadcast_updates_every_node_filter() {
        let mut net = DeterministicEngine::new(3, 1);
        net.advance_time(&[1, 2, 3]);
        net.assign_group(NodeId(0), NodeGroup::Upper);
        net.broadcast_params(FilterParams::Separator { lo: 2, hi: 2 });
        assert_eq!(net.peek_filter(NodeId(0)), Filter::at_least(2));
        assert_eq!(net.peek_filter(NodeId(1)), Filter::at_most(2));
        assert_eq!(net.peek_filter(NodeId(2)), Filter::at_most(2));
    }

    #[test]
    fn existence_round_charges_only_responders() {
        let mut net = DeterministicEngine::new(8, 1);
        net.advance_time(&[0, 0, 0, 0, 0, 0, 0, 100]);
        // Round with probability 1 (2^round >= population): exactly the single
        // node with value > 50 responds.
        let replies = net.existence_round(10, 8, ExistencePredicate::GreaterThan(50));
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].sender(), NodeId(7));
        let stats = net.stats();
        assert_eq!(stats.messages_of_kind(MessageKind::Upstream), 1);
        assert_eq!(stats.rounds, 1);
        // No responders → no cost.
        let replies = net.existence_round(10, 8, ExistencePredicate::GreaterThan(1000));
        assert!(replies.is_empty());
        assert_eq!(net.stats().messages_of_kind(MessageKind::Upstream), 1);
    }

    #[test]
    fn pending_violations_survive_until_new_filter() {
        let mut net = DeterministicEngine::new(2, 1);
        net.advance_time(&[10, 20]);
        net.assign_filter(NodeId(1), Filter::at_most(15));
        // Node 1 violates immediately (invalid filter is allowed by the model).
        let replies = net.existence_round(10, 2, ExistencePredicate::PendingViolation);
        assert_eq!(replies.len(), 1);
        match replies[0] {
            NodeMessage::ViolationReport {
                node,
                value,
                direction,
            } => {
                assert_eq!(node, NodeId(1));
                assert_eq!(value, 20);
                assert_eq!(direction, Violation::FromBelow);
            }
            ref other => panic!("expected violation report, got {other:?}"),
        }
        // Fixing the filter clears the pending violation.
        net.assign_filter(NodeId(1), Filter::at_most(30));
        let replies = net.existence_round(10, 2, ExistencePredicate::PendingViolation);
        assert!(replies.is_empty());
    }

    #[test]
    fn same_seed_same_counts() {
        let run = |seed: u64| {
            let mut net = DeterministicEngine::new(16, seed);
            net.advance_time(&(0..16).map(|i| i * 10).collect::<Vec<_>>());
            let mut responses = 0;
            for round in 0..5 {
                responses += net
                    .existence_round(round, 16, ExistencePredicate::GreaterThan(0))
                    .len();
            }
            (responses, net.stats().total_messages())
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    #[should_panic]
    fn advance_time_checks_length() {
        let mut net = DeterministicEngine::new(3, 1);
        net.advance_time(&[1, 2]);
    }
}
