//! Sharded parallel engine: the indexed engine's O(active) algorithm, split
//! across a fixed worker pool.
//!
//! [`ShardedEngine`] partitions the node population into `W` contiguous id
//! ranges (*shards*). Each shard owns its slice of the struct-of-arrays node
//! state ([`NodeStateSoA`]) plus the two indexes the
//! [`IndexedEngine`](crate::IndexedEngine) maintains globally — a
//! pending-violation set and a lazily rebuilt value-sorted index — and is
//! permanently affined to one worker thread of a fixed pool. The server side
//! (the [`Network`] implementation) routes each operation to the shards it
//! involves and merges their per-shard reply buffers.
//!
//! ## Why the merge is bit-identical to the baseline
//!
//! Three facts combine to make the engine's observable behaviour — replies,
//! [`CommStats`], node state, every per-node RNG stream — equal to
//! [`DeterministicEngine`](crate::DeterministicEngine) for *any* shard count:
//!
//! 1. **RNG streams are per node.** A node's `ChaCha8` RNG is seeded from
//!    `(master seed, node id)` and advanced only by the `existence_coin` flip,
//!    which happens only when the node's predicate holds. Which *thread* flips
//!    the coin, and in which order relative to other nodes, cannot matter —
//!    the streams are independent. (PR 2 proved this argument for skipping
//!    inactive nodes; hosting active nodes on different shards is the same
//!    argument applied to partitioning instead of filtering.)
//! 2. **Shards are contiguous and ordered.** Shard `s` holds ids
//!    `bounds[s]..bounds[s+1]`. Every shard produces its replies in ascending
//!    node-id order (the pending set iterates in id order; threshold replies
//!    are sorted by sender per shard), so concatenating the per-shard buffers
//!    in shard order yields the global id order — exactly the reply order of
//!    the baseline engine, with no global sort.
//! 3. **The active set is a disjoint union.** A predicate's active set within
//!    a shard depends only on that shard's node state, and the union over
//!    shards equals the global active set the indexed engine computes.
//!    Skipping a shard whose pending set is empty therefore skips only nodes
//!    that would not have been visited anyway — no RNG stream moves.
//!
//! ## Execution model
//!
//! State lives *at home* in the engine between operations (free `peek_*`
//! inspection needs no synchronisation). For an operation that involves
//! several shards, each involved shard is moved to its affined worker through
//! a channel, processed, and moved back; single-shard operations and runs on
//! machines without usable parallelism execute inline on the caller thread.
//! Both paths run the same `Shard` methods, so dispatch placement can never
//! change behaviour — a unit test drives both paths through the same script
//! and asserts equality.
//!
//! A violation-free time step stays allocation-free and dispatch-free: each
//! of the `⌈log₂ n⌉ + 1` existence rounds sees every pending set empty and
//! reduces to one meter update — the same O(1)-per-silent-round property the
//! indexed engine has, now independent of the worker count.
//!
//! Dense observation delivery depends on the placement: a parallel engine
//! stages each shard's slice of the row into that shard's own buffer and
//! fans the scan out to the pool (the staging copies total exactly one row —
//! the same bytes a single shared-row copy would move — and give every
//! worker a contiguous, privately owned slice, so workers never share a
//! cache line); an inline engine skips staging entirely and each shard reads
//! the caller's row directly. Either way the per-shard scan is the zone-map
//! bulk pass of [`NodeStateSoA::advance_row`].

use crate::network::Network;
use crate::node::{existence_coin, node_seed, node_seed_gen};
use crate::partition;
use crate::value_index::ValueIndex;
use crossbeam_channel::{unbounded, Receiver, Sender};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use std::fmt;
use std::thread::JoinHandle;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::rule::filter_for;
use topk_model::soa::NodeStateSoA;

/// Where multi-shard operations execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Decide at construction: use the worker pool iff the engine has more
    /// than one shard *and* the machine reports more than one usable CPU.
    Auto,
    /// Always execute on the caller thread (no worker pool is spawned).
    Inline,
    /// Always move involved shards to their workers (even on one CPU) — used
    /// by the differential tests to exercise the channel path everywhere.
    Parallel,
}

/// One operation shipped to a shard's worker. Inputs that vary per shard
/// (dense rows, sparse change lists) are staged in the shard's own scratch
/// buffers before dispatch, so the op itself stays `Copy`.
#[derive(Debug, Clone, Copy)]
enum ShardOp {
    /// Deliver the dense row staged in `Shard::row`.
    AdvanceDense,
    /// Apply the sparse changes staged in `Shard::sparse`.
    AdvanceSparse,
    /// Run one existence round and stage replies in `Shard::replies`.
    Round {
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
    },
    /// Re-derive every node's filter from new broadcast parameters.
    Params(FilterParams),
    /// Assign a group to every node (re-deriving filters if params exist).
    GroupAll(NodeGroup, Option<FilterParams>),
}

/// A contiguous range of nodes with the indexed engine's per-range state.
struct Shard {
    /// Global id of local node 0.
    offset: usize,
    state: NodeStateSoA,
    rngs: Vec<ChaCha8Rng>,
    /// Local ids with a pending violation, ascending (= ascending global id).
    pending: BTreeSet<u32>,
    /// Radix value index over the shard's slice (local ids, global tie-break
    /// via `offset`); warmed by the first threshold/rank round, maintained
    /// incrementally on quiet paths, invalidated by bulk mutation (see
    /// `crate::value_index`).
    index: ValueIndex,
    /// Full index builds so far (see `IndexedEngine::index_rebuilds`).
    index_rebuilds: u64,
    /// Scratch: pending-flag transitions reported by `advance_row`.
    transitions: Vec<u32>,
    /// Scratch: value-changed ids reported by `advance_row_tracked` when the
    /// warm index is maintained across a dense row.
    changed_ids: Vec<u32>,
    /// Scratch: local ids active in the current round.
    scratch_ids: Vec<u32>,
    /// Per-shard reply buffer, merged by the server in shard order.
    replies: Vec<NodeMessage>,
    /// Staging buffer for the dense row when dispatching to a worker.
    row: Vec<Value>,
    /// Staging buffer for routed sparse changes (local id, value).
    sparse: Vec<(u32, Value)>,
    /// Regime estimate for [`NodeStateSoA::advance_row`]: whether the last
    /// dense row changed at least 1/64 of the shard (see `DENSE_BIAS_SHIFT`).
    dense_biased: bool,
    /// Whether an inline bulk sparse pass wrote deferred values into this
    /// shard (its pending flags must be refreshed before the step completes).
    touched: bool,
}

/// A shard is *dense-biased* while at least `len >> DENSE_BIAS_SHIFT` of its
/// nodes changed in the previous dense row (1/64: roughly where the cost of
/// an unpredictable skip branch overtakes the cost of unconditional stores).
const DENSE_BIAS_SHIFT: u32 = 6;

impl Shard {
    fn new(offset: usize, len: usize, master_seed: u64) -> Shard {
        Shard {
            offset,
            state: NodeStateSoA::new(len),
            rngs: (offset..offset + len)
                .map(|id| ChaCha8Rng::seed_from_u64(node_seed(master_seed, NodeId(id))))
                .collect(),
            pending: BTreeSet::new(),
            index: ValueIndex::new(offset, len),
            index_rebuilds: 0,
            transitions: Vec::new(),
            changed_ids: Vec::new(),
            scratch_ids: Vec::new(),
            replies: Vec::new(),
            row: Vec::new(),
            sparse: Vec::new(),
            // Runs start with calibration rows that change everything.
            dense_biased: true,
            touched: false,
        }
    }

    fn len(&self) -> usize {
        self.state.len()
    }

    #[inline]
    fn note_pending(&mut self, i: u32, was: bool, now: bool) {
        if was != now {
            if now {
                self.pending.insert(i);
            } else {
                self.pending.remove(&i);
            }
        }
    }

    #[inline]
    fn apply_value(&mut self, i: u32, v: Value) {
        let was = self.state.pending(i as usize).is_some();
        let now = self.state.set_value(i as usize, v).is_some();
        self.note_pending(i, was, now);
        self.index.note_update(i, v);
    }

    fn apply_filter(&mut self, i: u32, filter: Filter) {
        let was = self.state.pending(i as usize).is_some();
        let now = self.state.set_filter(i as usize, filter).is_some();
        self.note_pending(i, was, now);
    }

    fn rederive_filter(&mut self, i: u32, params: Option<FilterParams>) {
        if let Some(p) = params {
            let f = filter_for(self.state.group(i as usize), &p);
            self.apply_filter(i, f);
        }
    }

    /// Dense observation delivery over the shard's slice of the row.
    ///
    /// Index policy: in the quiet regime a warm value index is kept warm —
    /// `advance_row_tracked` reports exactly the changed ids and each one is
    /// an `O(1)` bucket move. In the dense regime (≥ 1/64 of the shard
    /// changing per step) per-id maintenance would approach the cost of a
    /// full rebuild while forfeiting the vectorised dense kernel, so the
    /// index is dropped cold instead and the next threshold round rebuilds
    /// it once.
    fn advance_dense(&mut self, row: &[Value]) {
        let mut transitions = std::mem::take(&mut self.transitions);
        let changed = if self.index.is_warm() && !self.dense_biased {
            let mut changed_ids = std::mem::take(&mut self.changed_ids);
            let changed = self
                .state
                .advance_row_tracked(row, &mut transitions, &mut changed_ids);
            for &i in &changed_ids {
                self.index.note_update(i, self.state.value(i as usize));
            }
            self.changed_ids = changed_ids;
            changed
        } else {
            let changed = self
                .state
                .advance_row(row, &mut transitions, self.dense_biased);
            if changed > 0 {
                self.index.invalidate();
            }
            changed
        };
        // Feed the observed change rate back as the next step's loop hint
        // (workload regimes are temporally correlated).
        self.dense_biased = changed >= (self.len() >> DENSE_BIAS_SHIFT).max(1);
        for &i in &transitions {
            if self.state.pending(i as usize).is_some() {
                self.pending.insert(i);
            } else {
                self.pending.remove(&i);
            }
        }
        self.transitions = transitions;
    }

    /// Applies the staged sparse changes in order (last entry per node wins).
    ///
    /// Short change lists go through the per-node path (touching only the
    /// changed nodes). A list covering a sizeable fraction of the shard is a
    /// dense step in disguise: values are applied with the invariant deferred,
    /// then one zipped pass re-establishes every pending flag — the same
    /// column traffic as a dense advance instead of one scattered filter
    /// lookup per change. Both paths produce identical state (the bulk pass
    /// nets out intermediate transitions; the final flags and pending set are
    /// a pure function of the final values).
    fn advance_sparse(&mut self) {
        let mut sparse = std::mem::take(&mut self.sparse);
        if sparse.len() * 4 >= self.len() {
            let mut changed = false;
            for &(i, v) in &sparse {
                if self.state.value(i as usize) != v {
                    self.state.set_value_deferred(i as usize, v);
                    changed = true;
                }
            }
            if changed {
                // Deferred writes bypass `apply_value`, so the index cannot
                // be maintained per id here; drop it cold.
                self.index.invalidate();
            }
            self.refresh_after_deferred();
        } else {
            for &(i, v) in &sparse {
                if self.state.value(i as usize) != v {
                    self.apply_value(i, v);
                }
            }
        }
        sparse.clear();
        self.sparse = sparse;
    }

    /// Re-establishes the pending invariant and index after a batch of
    /// [`NodeStateSoA::set_value_deferred`] writes.
    fn refresh_after_deferred(&mut self) {
        let mut transitions = std::mem::take(&mut self.transitions);
        self.state.refresh_pending_bulk(&mut transitions);
        for &i in &transitions {
            if self.state.pending(i as usize).is_some() {
                self.pending.insert(i);
            } else {
                self.pending.remove(&i);
            }
        }
        self.transitions = transitions;
    }

    fn set_params(&mut self, params: FilterParams) {
        for i in 0..self.len() as u32 {
            let f = filter_for(self.state.group(i as usize), &params);
            self.apply_filter(i, f);
        }
    }

    fn set_group_all(&mut self, group: NodeGroup, params: Option<FilterParams>) {
        for i in 0..self.len() as u32 {
            self.state.set_group(i as usize, group);
            self.rederive_filter(i, params);
        }
    }

    /// Fills `scratch_ids` with the local ids of all nodes satisfying
    /// `predicate` — the shard's part of the global active set. The index
    /// warm-up is hoisted to this single dispatch point (one round warms a
    /// shard's index at most once; `index_rebuilds` counts the builds).
    fn collect_active(&mut self, predicate: ExistencePredicate) {
        self.scratch_ids.clear();
        if !matches!(predicate, ExistencePredicate::PendingViolation)
            && self.index.ensure_warm(self.state.values())
        {
            self.index_rebuilds += 1;
        }
        match predicate {
            ExistencePredicate::PendingViolation => {
                self.scratch_ids.extend(self.pending.iter().copied());
            }
            ExistencePredicate::GreaterThan(t) => {
                self.index
                    .collect_greater_than(t, self.state.values(), &mut self.scratch_ids);
            }
            ExistencePredicate::AtLeast(t) => {
                self.index
                    .collect_at_least(t, self.state.values(), &mut self.scratch_ids);
            }
            ExistencePredicate::LessThan(t) => {
                self.index
                    .collect_less_than(t, self.state.values(), &mut self.scratch_ids);
            }
            ExistencePredicate::RankWindow { above, below } => {
                self.index.collect_rank_window(
                    above,
                    below,
                    self.state.values(),
                    &mut self.scratch_ids,
                );
            }
        }
    }

    /// Runs one existence round over the shard, staging replies (in ascending
    /// global-id order) in `self.replies`.
    fn round(&mut self, round: u32, population: u32, predicate: ExistencePredicate) {
        self.collect_active(predicate);
        self.replies.clear();
        for idx in 0..self.scratch_ids.len() {
            let i = self.scratch_ids[idx] as usize;
            if !existence_coin(&mut self.rngs[i], round, population) {
                continue;
            }
            let node = NodeId(self.offset + i);
            let value = self.state.value(i);
            self.replies.push(match (predicate, self.state.pending(i)) {
                (ExistencePredicate::PendingViolation, Some(direction)) => {
                    NodeMessage::ViolationReport {
                        node,
                        value,
                        direction,
                    }
                }
                _ => NodeMessage::ExistenceResponse { node, value },
            });
        }
        // Threshold/rank actives were visited in radix-bucket order (the
        // active *set* is exact; iteration order is free because per-node RNG
        // streams are independent); per-shard replies must come out in id
        // order so the shard-order concatenation is globally id-ordered (the
        // baseline's reply order).
        if !matches!(predicate, ExistencePredicate::PendingViolation) {
            self.replies.sort_unstable_by_key(NodeMessage::sender);
        }
    }

    fn execute(&mut self, op: ShardOp) {
        match op {
            ShardOp::AdvanceDense => {
                let row = std::mem::take(&mut self.row);
                self.advance_dense(&row);
                self.row = row;
            }
            ShardOp::AdvanceSparse => self.advance_sparse(),
            ShardOp::Round {
                round,
                population,
                predicate,
            } => self.round(round, population, predicate),
            ShardOp::Params(p) => self.set_params(p),
            ShardOp::GroupAll(g, params) => self.set_group_all(g, params),
        }
    }
}

/// Fixed pool of worker threads, one per shard (shard `s` is always processed
/// by worker `s` — shard affinity keeps each shard's columns warm in one
/// worker's cache).
struct WorkerPool {
    job_txs: Vec<Sender<(Box<Shard>, ShardOp)>>,
    done_rx: Receiver<(usize, Box<Shard>)>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(workers: usize) -> WorkerPool {
        let (done_tx, done_rx) = unbounded::<(usize, Box<Shard>)>();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = unbounded::<(Box<Shard>, ShardOp)>();
            let done_tx = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("topk-shard-{w}"))
                .spawn(move || {
                    for (mut shard, op) in rx.iter() {
                        shard.execute(op);
                        if done_tx.send((w, shard)).is_err() {
                            break;
                        }
                    }
                })
                .expect("failed to spawn shard worker");
            job_txs.push(tx);
            handles.push(handle);
        }
        WorkerPool {
            job_txs,
            done_rx,
            handles,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.job_txs.clear(); // closes the job channels; workers exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Sharded parallel engine (see module documentation).
pub struct ShardedEngine {
    n: usize,
    /// Home slots; a slot is `None` only while its shard is at a worker.
    shards: Vec<Option<Box<Shard>>>,
    /// Shard boundaries: shard `s` holds global ids `bounds[s]..bounds[s+1]`.
    bounds: Vec<usize>,
    pool: Option<WorkerPool>,
    /// Whether multi-shard operations go to the pool.
    parallel: bool,
    /// Last broadcast parameters (one shared copy, like the indexed engine).
    params: Option<FilterParams>,
    /// Scratch: indices of the shards involved in the current operation.
    involved: Vec<usize>,
    meter: CostMeter,
    /// Retained for reseeding joining nodes from `(master seed, id, generation)`.
    master_seed: u64,
    population: Population,
    /// Scratch row for masking dead slots out of dense observation delivery
    /// (untouched — and unallocated — while the full population is live).
    masked_row: Vec<Value>,
}

impl ShardedEngine {
    /// Creates an engine with `n` nodes split over `workers` shards, with
    /// [`Dispatch::Auto`] placement. RNG seeding matches the other engines.
    ///
    /// ```
    /// use topk_net::{Network, ShardedEngine};
    ///
    /// // Any shard count is bit-identical to the single-threaded engines.
    /// let mut net = ShardedEngine::new(100, 3, 4);
    /// net.advance_time(&vec![5; 100]);
    /// assert_eq!(net.n(), 100);
    /// assert_eq!(net.peek_value(topk_model::NodeId(99)), 5);
    /// ```
    pub fn new(n: usize, master_seed: u64, workers: usize) -> ShardedEngine {
        ShardedEngine::with_dispatch(n, master_seed, workers, Dispatch::Auto)
    }

    /// [`ShardedEngine::new`] with explicit dispatch placement.
    pub fn with_dispatch(
        n: usize,
        master_seed: u64,
        workers: usize,
        dispatch: Dispatch,
    ) -> ShardedEngine {
        let workers = workers.max(1);
        let bounds = partition::shard_bounds(n, workers);
        let shards: Vec<Option<Box<Shard>>> = (0..workers)
            .map(|s| {
                Some(Box::new(Shard::new(
                    bounds[s],
                    bounds[s + 1] - bounds[s],
                    master_seed,
                )))
            })
            .collect();
        let parallel = workers > 1
            && match dispatch {
                Dispatch::Inline => false,
                Dispatch::Parallel => true,
                Dispatch::Auto => std::thread::available_parallelism()
                    .map(|p| p.get() > 1)
                    .unwrap_or(false),
            };
        ShardedEngine {
            n,
            shards,
            bounds,
            pool: parallel.then(|| WorkerPool::spawn(workers)),
            parallel,
            params: None,
            involved: Vec::new(),
            meter: CostMeter::new(),
            master_seed,
            population: Population::new(n),
            masked_row: Vec::new(),
        }
    }

    /// Number of shards (= workers) the population is split over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether multi-shard operations are dispatched to the worker pool.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Number of nodes whose value currently violates their filter (free
    /// inspection, useful for harnesses and tests).
    pub fn pending_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.as_ref().expect("shard at home").pending.len())
            .sum()
    }

    /// The shard owning `node` (O(1) — see [`crate::partition::shard_of`]).
    fn shard_of(&self, node: usize) -> usize {
        assert!(
            node < self.n,
            "node id {node} out of range (n = {})",
            self.n
        );
        partition::shard_of(self.n, self.shards.len(), node)
    }

    /// Resolves a global node id to `(owning shard, local index)`.
    fn locate(&self, node: NodeId) -> (usize, usize) {
        let s = self.shard_of(node.index());
        (s, node.index() - self.bounds[s])
    }

    fn shard_mut(&mut self, s: usize) -> &mut Shard {
        self.shards[s].as_mut().expect("shard at home")
    }

    fn shard_ref(&self, s: usize) -> &Shard {
        self.shards[s].as_ref().expect("shard at home")
    }

    /// Runs `op` on the shards listed in `self.involved` — inline on the
    /// caller thread, or on the pool when parallel dispatch is on and more
    /// than one shard is involved. Both paths execute the same shard code.
    fn run_involved(&mut self, op: ShardOp) {
        if self.involved.len() <= 1 || !self.parallel {
            for idx in 0..self.involved.len() {
                let s = self.involved[idx];
                self.shards[s].as_mut().expect("shard at home").execute(op);
            }
            return;
        }
        let pool = self.pool.as_ref().expect("parallel engines have a pool");
        for &s in &self.involved {
            let shard = self.shards[s].take().expect("shard already in flight");
            pool.job_txs[s].send((shard, op)).expect("worker hung up");
        }
        for _ in 0..self.involved.len() {
            let (s, shard) = pool.done_rx.recv().expect("worker hung up");
            self.shards[s] = Some(shard);
        }
    }

    /// Dense observation delivery of an (already masked) full row: stages each
    /// shard's slice and fans out, or lets each shard read the row inline.
    fn deliver_row(&mut self, values: &[Value]) {
        if self.parallel {
            // Stage each shard's slice, then fan out.
            for s in 0..self.shards.len() {
                let range = self.bounds[s]..self.bounds[s + 1];
                let shard = self.shard_mut(s);
                shard.row.clear();
                shard.row.extend_from_slice(&values[range]);
            }
            self.involve_all();
            self.run_involved(ShardOp::AdvanceDense);
        } else {
            // Inline delivery needs no staging copy: each shard reads its
            // slice of the caller's row directly.
            for s in 0..self.shards.len() {
                let range = self.bounds[s]..self.bounds[s + 1];
                self.shards[s]
                    .as_mut()
                    .expect("shard at home")
                    .advance_dense(&values[range]);
            }
        }
    }

    /// Stages `self.involved = all non-empty shards`.
    fn involve_all(&mut self) {
        self.involved.clear();
        for s in 0..self.shards.len() {
            if self.bounds[s + 1] > self.bounds[s] {
                self.involved.push(s);
            }
        }
    }
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("n", &self.n)
            .field("shards", &self.shards.len())
            .field("parallel", &self.parallel)
            .finish_non_exhaustive()
    }
}

impl Network for ShardedEngine {
    fn n(&self) -> usize {
        self.n
    }

    fn advance_time(&mut self, values: &[Value]) {
        assert_eq!(values.len(), self.n, "one observation per node required");
        if self.population.live_count() != self.n {
            // Dead slots stop receiving workload observations: mask the row
            // into a scratch copy (only ever paid while churn is active).
            let mut row = std::mem::take(&mut self.masked_row);
            row.clear();
            row.extend_from_slice(values);
            self.population.mask_row(&mut row);
            self.deliver_row(&row);
            self.masked_row = row;
        } else {
            self.deliver_row(values);
        }
        self.meter.record_time_step();
    }

    fn advance_time_sparse(&mut self, changes: &[(NodeId, Value)]) {
        if !self.parallel && changes.len() * 4 >= self.n.max(1) {
            // Inline bulk: a change list covering a sizeable fraction of the
            // population is a dense step in disguise. Apply the values
            // straight to the owning shards (no staging buffers), then
            // re-establish each touched shard's pending invariant with one
            // zone-mapped bulk pass.
            for &(node, v) in changes {
                let (s, local) = self.locate(node);
                let v = if self.population.is_live(node) { v } else { 0 };
                let shard = self.shards[s].as_mut().expect("shard at home");
                if shard.state.value(local) != v {
                    shard.state.set_value_deferred(local, v);
                    shard.index.invalidate();
                    shard.touched = true;
                }
            }
            for s in 0..self.shards.len() {
                let shard = self.shards[s].as_mut().expect("shard at home");
                if shard.touched {
                    shard.touched = false;
                    shard.refresh_after_deferred();
                }
            }
            self.meter.record_time_step();
            return;
        }
        for &(node, v) in changes {
            let (s, local) = self.locate(node);
            let v = if self.population.is_live(node) { v } else { 0 };
            self.shard_mut(s).sparse.push((local as u32, v));
        }
        self.involved.clear();
        for s in 0..self.shards.len() {
            if !self.shard_ref(s).sparse.is_empty() {
                self.involved.push(s);
            }
        }
        self.run_involved(ShardOp::AdvanceSparse);
        self.meter.record_time_step();
    }

    fn apply_membership(&mut self, events: &[MembershipEvent]) {
        for &event in events {
            match event {
                MembershipEvent::Leave(node) => {
                    self.population.apply(event);
                    let (s, local) = self.locate(node);
                    let shard = self.shard_mut(s);
                    if shard.state.value(local) != 0 {
                        shard.apply_value(local as u32, 0);
                    }
                }
                MembershipEvent::Join(node) => {
                    let generation = self.population.apply(event);
                    let master_seed = self.master_seed;
                    let (s, local) = self.locate(node);
                    let shard = self.shard_mut(s);
                    let group = shard.state.group(local);
                    let filter = shard.state.filter(local);
                    let was = shard.state.pending(local).is_some();
                    // `reset_node` bypasses `apply_value`; tell the value
                    // index about the reset-to-0 explicitly.
                    if shard.state.value(local) != 0 {
                        shard.index.note_update(local as u32, 0);
                    }
                    shard.state.reset_node(local);
                    shard.note_pending(local as u32, was, false);
                    shard.rngs[local] =
                        ChaCha8Rng::seed_from_u64(node_seed_gen(master_seed, node, generation));
                    // Recovery replay of the slot's current group and filter,
                    // exactly as the baseline engine charges it.
                    self.meter.push_label(ProtocolLabel::Recovery);
                    self.assign_group(node, group);
                    self.assign_filter(node, filter);
                    self.meter.pop_label();
                }
            }
        }
    }

    fn broadcast_params(&mut self, params: FilterParams) {
        self.meter.record(MessageKind::Broadcast);
        self.params = Some(params);
        self.involve_all();
        self.run_involved(ShardOp::Params(params));
    }

    fn assign_group(&mut self, node: NodeId, group: NodeGroup) {
        self.meter.record(MessageKind::DownstreamUnicast);
        let (s, local) = self.locate(node);
        let params = self.params;
        let shard = self.shard_mut(s);
        shard.state.set_group(local, group);
        shard.rederive_filter(local as u32, params);
    }

    fn broadcast_group(&mut self, group: NodeGroup) {
        self.meter.record(MessageKind::Broadcast);
        let params = self.params;
        self.involve_all();
        self.run_involved(ShardOp::GroupAll(group, params));
    }

    fn assign_filter(&mut self, node: NodeId, filter: Filter) {
        self.meter.record(MessageKind::DownstreamUnicast);
        let (s, local) = self.locate(node);
        self.shard_mut(s).apply_filter(local as u32, filter);
    }

    fn probe(&mut self, node: NodeId) -> Value {
        self.meter.record(MessageKind::DownstreamUnicast);
        self.meter.record(MessageKind::Upstream);
        let (s, local) = self.locate(node);
        self.shard_ref(s).state.value(local)
    }

    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    ) {
        self.meter.record_round();
        // Only shards that can contribute are involved. For the violation
        // check this prunes to the shards with non-empty pending sets —
        // skipping a shard skips only predicate-false nodes, which consume no
        // randomness, so the streams stay bit-identical (see module docs).
        self.involved.clear();
        for s in 0..self.shards.len() {
            let shard = self.shard_ref(s);
            if shard.len() == 0 {
                continue;
            }
            if matches!(predicate, ExistencePredicate::PendingViolation) && shard.pending.is_empty()
            {
                continue;
            }
            self.involved.push(s);
        }
        replies.clear();
        if self.involved.is_empty() {
            // Silent round: one meter update, no dispatch, no allocation.
            return;
        }
        self.run_involved(ShardOp::Round {
            round,
            population,
            predicate,
        });
        // `involved` is ascending and shards are contiguous ascending id
        // ranges, so concatenation yields global id order.
        for idx in 0..self.involved.len() {
            let s = self.involved[idx];
            replies.extend_from_slice(&self.shard_ref(s).replies);
        }
        self.meter
            .record_many(MessageKind::Upstream, replies.len() as u64);
    }

    fn end_existence_run(&mut self) {
        // Nodes hold no per-run state (the round schedule is predetermined),
        // so only the broadcast is charged — same as the other engines.
        self.meter.record(MessageKind::Broadcast);
    }

    fn meter(&mut self) -> &mut CostMeter {
        &mut self.meter
    }

    fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    fn peek_value(&self, node: NodeId) -> Value {
        let (s, local) = self.locate(node);
        self.shard_ref(s).state.value(local)
    }

    fn peek_filter(&self, node: NodeId) -> Filter {
        let (s, local) = self.locate(node);
        self.shard_ref(s).state.filter(local)
    }

    fn peek_group(&self, node: NodeId) -> NodeGroup {
        let (s, local) = self.locate(node);
        self.shard_ref(s).state.group(local)
    }

    fn peek_filters_into(&self, out: &mut Vec<Filter>) {
        out.clear();
        for s in 0..self.shards.len() {
            out.extend(self.shard_ref(s).state.filters().map(|(_, f)| f));
        }
    }

    fn peek_values_into(&self, out: &mut Vec<Value>) {
        out.clear();
        for s in 0..self.shards.len() {
            out.extend_from_slice(self.shard_ref(s).state.values());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicEngine;

    /// A mixed script that exercises every transport primitive.
    fn script(net: &mut dyn Network) -> (Vec<NodeMessage>, Vec<NodeMessage>, CommStats) {
        net.advance_time(&[3, 1, 4, 1, 5, 9, 2, 6]);
        net.assign_group(NodeId(5), NodeGroup::Upper);
        net.broadcast_params(FilterParams::Separator { lo: 5, hi: 5 });
        let mut found = Vec::new();
        for round in 0..=3 {
            let r = net.existence_round(round, 8, ExistencePredicate::PendingViolation);
            if !r.is_empty() {
                found = r;
                net.end_existence_run();
                break;
            }
        }
        net.advance_time_sparse(&[(NodeId(7), 4), (NodeId(0), 8)]);
        let max = net.existence_round(10, 8, ExistencePredicate::AtLeast(9));
        net.assign_filter(NodeId(2), Filter::at_most(3));
        // Pending now: node 0 (sparse advance pushed it past its [0,5] filter)
        // and node 2 (the filter just assigned excludes its value 4).
        let viol = net.existence_round(10, 8, ExistencePredicate::PendingViolation);
        assert_eq!(viol.len(), 2);
        assert_eq!(viol[0].sender(), NodeId(0));
        assert_eq!(viol[1].sender(), NodeId(2));
        net.probe(NodeId(3));
        (found, max, net.stats())
    }

    #[test]
    fn matches_baseline_for_every_shard_count() {
        let mut base = DeterministicEngine::new(8, 1234);
        let expected = script(&mut base);
        for workers in [1, 2, 3, 5, 8, 13] {
            let mut sharded = ShardedEngine::new(8, 1234, workers);
            let got = script(&mut sharded);
            assert_eq!(expected, got, "diverged at {workers} shards");
            assert_eq!(base.peek_filters(), sharded.peek_filters());
            assert_eq!(base.peek_values(), sharded.peek_values());
            for i in 0..8 {
                assert_eq!(base.peek_group(NodeId(i)), sharded.peek_group(NodeId(i)));
            }
        }
    }

    #[test]
    fn inline_and_parallel_dispatch_agree() {
        let mut inline = ShardedEngine::with_dispatch(8, 77, 3, Dispatch::Inline);
        let mut parallel = ShardedEngine::with_dispatch(8, 77, 3, Dispatch::Parallel);
        assert!(!inline.is_parallel());
        assert!(parallel.is_parallel());
        let a = script(&mut inline);
        let b = script(&mut parallel);
        assert_eq!(a, b);
        assert_eq!(inline.peek_filters(), parallel.peek_filters());
        assert_eq!(inline.peek_values(), parallel.peek_values());
    }

    #[test]
    fn more_shards_than_nodes_leaves_empty_shards_idle() {
        let mut net = ShardedEngine::with_dispatch(3, 9, 8, Dispatch::Parallel);
        assert_eq!(net.shard_count(), 8);
        net.advance_time(&[10, 20, 30]);
        net.assign_filter(NodeId(2), Filter::at_most(25));
        assert_eq!(net.pending_count(), 1);
        let replies = net.existence_round(10, 3, ExistencePredicate::PendingViolation);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].sender(), NodeId(2));
        assert_eq!(net.peek_values(), vec![10, 20, 30]);
    }

    #[test]
    fn silent_rounds_do_not_dispatch_or_allocate() {
        let mut net = ShardedEngine::with_dispatch(16, 5, 4, Dispatch::Parallel);
        net.advance_time(&(0..16).map(|i| i * 10).collect::<Vec<_>>());
        let mut replies = Vec::new();
        // No filters assigned: nothing can be pending; the buffer must stay
        // at capacity 0 because the silent path never touches the shards.
        for round in 0..5 {
            net.existence_round_into(
                round,
                16,
                ExistencePredicate::PendingViolation,
                &mut replies,
            );
            assert!(replies.is_empty());
            assert_eq!(replies.capacity(), 0);
        }
        assert_eq!(net.stats().rounds, 5);
    }

    #[test]
    fn sparse_advance_routes_to_owning_shards() {
        let mut dense = ShardedEngine::with_dispatch(9, 7, 3, Dispatch::Parallel);
        let mut sparse = ShardedEngine::with_dispatch(9, 7, 3, Dispatch::Parallel);
        let row: Vec<Value> = (0..9).map(|i| i + 1).collect();
        dense.advance_time(&row);
        sparse.advance_time(&row);
        let mut row2 = row.clone();
        row2[0] = 99; // shard 0
        row2[4] = 0; // shard 1
        row2[8] = 42; // shard 2, twice (last wins)
        dense.advance_time(&row2);
        sparse.advance_time_sparse(&[
            (NodeId(0), 99),
            (NodeId(4), 0),
            (NodeId(8), 17),
            (NodeId(8), 42),
        ]);
        assert_eq!(dense.peek_values(), sparse.peek_values());
        assert_eq!(dense.stats(), sparse.stats());
        let a = dense.existence_round(10, 9, ExistencePredicate::GreaterThan(5));
        let b = sparse.existence_round(10, 9, ExistencePredicate::GreaterThan(5));
        assert_eq!(a, b);
    }

    #[test]
    fn drop_joins_worker_threads() {
        let net = ShardedEngine::with_dispatch(32, 3, 4, Dispatch::Parallel);
        drop(net); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let mut net = ShardedEngine::new(4, 1, 2);
        net.advance_time_sparse(&[(NodeId(4), 1)]);
    }

    #[test]
    fn closed_form_shard_routing_matches_the_boundaries() {
        for n in 1..40 {
            for workers in 1..12 {
                let net = ShardedEngine::with_dispatch(n, 0, workers, Dispatch::Inline);
                for node in 0..n {
                    let s = net.shard_of(node);
                    assert!(
                        net.bounds[s] <= node && node < net.bounds[s + 1],
                        "n={n} workers={workers}: node {node} routed to shard {s} [{}, {})",
                        net.bounds[s],
                        net.bounds[s + 1]
                    );
                }
            }
        }
    }

    #[test]
    fn bulk_and_per_node_sparse_paths_agree() {
        // A change list covering most of one shard takes the bulk pending
        // refresh; the same values delivered one step at a time take the
        // per-node path. Final state must be identical.
        let mut bulk = ShardedEngine::with_dispatch(8, 3, 2, Dispatch::Inline);
        let mut scalar = ShardedEngine::with_dispatch(8, 3, 2, Dispatch::Inline);
        for net in [&mut bulk, &mut scalar] {
            net.advance_time(&[10, 20, 30, 40, 50, 60, 70, 80]);
            net.broadcast_params(FilterParams::Separator { lo: 45, hi: 45 });
        }
        // All four nodes of shard 0 change at once (bulk), shard 1 untouched.
        let changes = [
            (NodeId(0), 50u64),
            (NodeId(1), 5),
            (NodeId(2), 46),
            (NodeId(3), 44),
        ];
        bulk.advance_time_sparse(&changes);
        for c in changes {
            scalar.advance_time_sparse(&[c]);
        }
        assert_eq!(bulk.peek_values(), scalar.peek_values());
        assert_eq!(bulk.pending_count(), scalar.pending_count());
        let a = bulk.existence_round(10, 8, ExistencePredicate::PendingViolation);
        let b = scalar.existence_round(10, 8, ExistencePredicate::PendingViolation);
        assert_eq!(a, b);
    }
}
