//! Shared ε-neighbourhood band arithmetic for the pivot-based generators.
//!
//! Three families (noise oscillation, regime switching, churn/flat-line) place
//! node values relative to the ε-neighbourhood of a pivot `z`: an *inner* band
//! whose members provably sit inside the neighbourhood of the k-th value
//! whenever the k-th value itself is in the band, and *clearly-above* /
//! *clearly-below* anchors outside it. The derivation is subtle enough (the
//! inner band uses `ε/2` so that any two members are mutually within `ε`, cf.
//! `1/(1−ε/2)² ≤ 1/(1−ε)`) that it must live in exactly one place — and so
//! must the saturation discipline: `scale_up` saturates at [`Value::MAX`] for
//! huge pivots, so every `+ 1` here is a `saturating_add` (the bands degrade
//! gracefully instead of overflowing).

use topk_model::prelude::*;

/// Value bands around a pivot `z` for a neighbourhood width `eps`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Bands {
    /// Inclusive lower end of the inner (ε/2) band.
    pub inner_lo: Value,
    /// Inclusive upper end of the inner band (always ≥ `inner_lo`).
    pub inner_hi: Value,
    /// Smallest value clearly larger than *every* value in `[0, scale_up(z)]`
    /// — a safe anchor for leader nodes (even after mild upward jitter).
    pub clearly_above: Value,
    /// Largest value clearly smaller than every value in `[scale_down(z), ∞)`
    /// — a safe anchor for background nodes (always ≥ 1).
    pub clearly_below: Value,
}

/// Computes the bands for pivot `z` and width `eps`.
pub(crate) fn bands(z: Value, eps: Epsilon) -> Bands {
    let half = eps.halved();
    let inner_lo = half.scale_down(z).saturating_add(1);
    let inner_hi = half.scale_up(z).saturating_sub(1).max(inner_lo);
    let clearly_above = eps.scale_up(eps.scale_up(z)).saturating_add(1);
    let clearly_below = eps.scale_down(eps.scale_down(z)).saturating_sub(1).max(1);
    Bands {
        inner_lo,
        inner_hi,
        clearly_above,
        clearly_below,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_bracket_the_neighbourhood() {
        let eps = Epsilon::TENTH;
        let b = bands(100_000, eps);
        assert!(b.inner_lo <= b.inner_hi);
        // Inner members are inside the ε-neighbourhood of each other.
        assert!(eps.in_neighbourhood(b.inner_lo, b.inner_hi));
        // The anchors sit clearly outside.
        assert!(eps.clearly_larger(b.clearly_above, b.inner_hi));
        assert!(eps.clearly_smaller(b.clearly_below, b.inner_lo));
    }

    #[test]
    fn huge_pivots_saturate_instead_of_overflowing() {
        // scale_up saturates at Value::MAX for pivots past 2^63 with ε = 1/2;
        // the bands must degrade (collapse towards MAX), not panic.
        let b = bands(Value::MAX / 2 + 1, Epsilon::HALF);
        assert_eq!(b.clearly_above, Value::MAX);
        assert!(b.inner_lo <= b.inner_hi);
        let tiny = bands(64, Epsilon::HALF);
        assert!(tiny.clearly_below >= 1);
    }
}
