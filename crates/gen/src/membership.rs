//! Membership schedules: when nodes join and leave the population.
//!
//! The value workloads in this crate decide *what* every node observes;
//! a [`MembershipWorkload`] decides *who is there to observe it*. It is a
//! pre-validated per-step schedule of [`MembershipEvent`]s, designed to be
//! plugged into `topk_core::monitor::run_with_membership` next to any value
//! workload: the driver applies the step's events first, then delivers the
//! step's row (masked for dead slots by the engines).
//!
//! Two constructors cover the two experimental needs:
//!
//! * [`MembershipWorkload::from_schedule`] — an explicit event list, for
//!   hand-crafted scenarios ("the k-th node leaves at step 10");
//! * [`MembershipWorkload::churn`] — a seeded random churn plan: live slots
//!   leave with a per-step probability and rejoin after a fixed downtime,
//!   with a floor on the live population so the top-k stays defined.
//!
//! Both validate well-formedness at construction by simulating a
//! [`Population`], so a malformed schedule fails loudly here rather than
//! deep inside an engine.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topk_model::prelude::*;

/// A validated per-step schedule of membership events (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipWorkload {
    n: usize,
    /// `per_step[t]` — the events taking effect at step `t`, in application
    /// order. Steps beyond the planned horizon have no events.
    per_step: Vec<Vec<MembershipEvent>>,
    total: usize,
}

impl MembershipWorkload {
    /// Builds a schedule from explicit `(step, event)` pairs.
    ///
    /// Events are applied in ascending step order; events naming the same
    /// step keep their order in `events`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is malformed: an event names a slot `>= n`, a
    /// live slot joins, or a dead slot leaves (validated by replaying the
    /// schedule against a [`Population`], the exact check every engine runs).
    pub fn from_schedule(n: usize, events: &[(u64, MembershipEvent)]) -> MembershipWorkload {
        let steps = events.iter().map(|&(t, _)| t + 1).max().unwrap_or(0) as usize;
        let mut per_step: Vec<Vec<MembershipEvent>> = vec![Vec::new(); steps];
        let mut sorted: Vec<(u64, usize, MembershipEvent)> = events
            .iter()
            .enumerate()
            .map(|(i, &(t, e))| (t, i, e))
            .collect();
        sorted.sort_by_key(|&(t, i, _)| (t, i));
        for (t, _, event) in sorted {
            per_step[t as usize].push(event);
        }
        let total = events.len();
        let w = MembershipWorkload { n, per_step, total };
        w.validate();
        w
    }

    /// Builds a seeded random churn plan over `steps` steps: every live slot
    /// leaves with probability `leave_permille`/1000 per step and rejoins
    /// exactly `downtime` steps later (if the run is still going). At least
    /// `min_live` slots stay live at all times — departures that would sink
    /// the population below the floor are skipped, so the monitored top-k
    /// can stay well-defined.
    ///
    /// The plan is a pure function of its arguments: the same inputs yield
    /// the same schedule on every engine and every platform.
    ///
    /// # Panics
    ///
    /// Panics if `min_live == 0` or `min_live > n`, if `downtime == 0`
    /// (a zero-step absence is not an event), or if
    /// `leave_permille > 1000`.
    pub fn churn(
        n: usize,
        steps: u64,
        seed: u64,
        leave_permille: u32,
        downtime: u64,
        min_live: usize,
    ) -> MembershipWorkload {
        assert!(min_live >= 1, "at least one node must stay live");
        assert!(min_live <= n, "the live floor cannot exceed the population");
        assert!(downtime >= 1, "a leaver must stay away at least one step");
        assert!(leave_permille <= 1000, "leave_permille is a probability");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut per_step: Vec<Vec<MembershipEvent>> = vec![Vec::new(); steps as usize];
        let mut live = vec![true; n];
        let mut live_count = n;
        // `returns[t]` — slots rejoining at step t.
        let mut returns: Vec<Vec<usize>> = vec![Vec::new(); steps as usize];
        let mut total = 0;
        for t in 0..steps as usize {
            for &i in &returns[t] {
                per_step[t].push(MembershipEvent::Join(NodeId(i)));
                live[i] = true;
                live_count += 1;
                total += 1;
            }
            for (i, slot) in live.iter_mut().enumerate() {
                if !*slot || live_count <= min_live || leave_permille == 0 {
                    continue;
                }
                if rng.gen_ratio(leave_permille, 1000) {
                    per_step[t].push(MembershipEvent::Leave(NodeId(i)));
                    *slot = false;
                    live_count -= 1;
                    total += 1;
                    let back = t + downtime as usize;
                    if back < steps as usize {
                        returns[back].push(i);
                    }
                }
            }
        }
        let w = MembershipWorkload { n, per_step, total };
        w.validate();
        w
    }

    /// Total number of slots the schedule is for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of events over the whole plan.
    pub fn total_events(&self) -> usize {
        self.total
    }

    /// The events taking effect at `step` (empty beyond the planned horizon).
    pub fn events_at(&self, step: u64) -> &[MembershipEvent] {
        self.per_step
            .get(step as usize)
            .map_or(&[], |v| v.as_slice())
    }

    /// An `events_at` closure in the shape
    /// `topk_core::monitor::run_with_membership` expects.
    pub fn driver(&self) -> impl FnMut(u64) -> Vec<MembershipEvent> + '_ {
        move |step| self.events_at(step).to_vec()
    }

    /// Replays the whole schedule against a fresh [`Population`] — panics on
    /// any malformation, with the same message an engine would produce.
    fn validate(&self) {
        let mut population = Population::new(self.n);
        for events in &self.per_step {
            for &event in events {
                assert!(
                    event.node().index() < self.n,
                    "membership event for slot {} out of range (n = {})",
                    event.node().index(),
                    self.n
                );
                population.apply(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedules_keep_step_assignment_and_order() {
        let w = MembershipWorkload::from_schedule(
            4,
            &[
                (2, MembershipEvent::Leave(NodeId(1))),
                (0, MembershipEvent::Leave(NodeId(3))),
                (2, MembershipEvent::Join(NodeId(3))),
            ],
        );
        assert_eq!(w.n(), 4);
        assert_eq!(w.total_events(), 3);
        assert_eq!(w.events_at(0), &[MembershipEvent::Leave(NodeId(3))]);
        assert_eq!(w.events_at(1), &[] as &[MembershipEvent]);
        assert_eq!(
            w.events_at(2),
            &[
                MembershipEvent::Leave(NodeId(1)),
                MembershipEvent::Join(NodeId(3)),
            ]
        );
        assert_eq!(w.events_at(99), &[] as &[MembershipEvent]);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn malformed_explicit_schedules_are_rejected_at_construction() {
        let _ = MembershipWorkload::from_schedule(2, &[(0, MembershipEvent::Join(NodeId(0)))]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slots_are_rejected_at_construction() {
        let _ = MembershipWorkload::from_schedule(2, &[(0, MembershipEvent::Leave(NodeId(5)))]);
    }

    #[test]
    fn churn_plans_are_deterministic_and_respect_the_live_floor() {
        let a = MembershipWorkload::churn(16, 100, 0xC0FFEE, 80, 5, 10);
        let b = MembershipWorkload::churn(16, 100, 0xC0FFEE, 80, 5, 10);
        assert_eq!(a, b, "same arguments must give the same plan");
        assert!(a.total_events() > 0, "an 8% rate over 100 steps must churn");
        // Replay and check the floor at every step.
        let mut population = Population::new(16);
        for t in 0..100 {
            for &event in a.events_at(t) {
                population.apply(event);
            }
            assert!(population.live_count() >= 10, "floor violated at step {t}");
        }
    }

    #[test]
    fn churn_leavers_return_after_the_downtime() {
        let w = MembershipWorkload::churn(8, 200, 7, 100, 3, 2);
        for t in 0..200u64 {
            for &event in w.events_at(t) {
                if let MembershipEvent::Leave(node) = event {
                    let back = t + 3;
                    if back < 200 {
                        assert!(
                            w.events_at(back).contains(&MembershipEvent::Join(node)),
                            "slot {node} left at {t} but did not rejoin at {back}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_rate_churn_is_empty() {
        let w = MembershipWorkload::churn(8, 50, 1, 0, 5, 1);
        assert_eq!(w.total_events(), 0);
    }
}
