//! Materialised traces: a rectangular table of observations.
//!
//! A [`Trace`] stores one row of `n` values per time step. Traces are what the
//! offline (OPT) solvers consume — an offline algorithm by definition sees the
//! whole input — and what the experiment harness feeds, step by step, to the
//! online protocols.

use serde::{Deserialize, Serialize};
use topk_model::prelude::*;
use topk_model::ModelError;

/// A rectangular table of observations: `rows[t][i]` is node `i`'s value at time `t`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    rows: Vec<Vec<Value>>,
}

impl Trace {
    /// Builds a trace from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyTrace`] if there are no rows or the first row is
    /// empty, and [`ModelError::RaggedTrace`] if rows have different lengths.
    pub fn new(rows: Vec<Vec<Value>>) -> Result<Trace, ModelError> {
        let Some(first) = rows.first() else {
            return Err(ModelError::EmptyTrace);
        };
        if first.is_empty() {
            return Err(ModelError::EmptyTrace);
        }
        let n = first.len();
        for (t, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(ModelError::RaggedTrace {
                    at: TimeStep(t as u64),
                    expected: n,
                    found: row.len(),
                });
            }
        }
        Ok(Trace { rows })
    }

    /// Builds a trace by evaluating `f(t, i)` for every time step and node.
    pub fn from_fn(steps: usize, n: usize, mut f: impl FnMut(usize, usize) -> Value) -> Trace {
        let rows = (0..steps)
            .map(|t| (0..n).map(|i| f(t, i)).collect())
            .collect();
        Trace::new(rows).expect("from_fn produces rectangular traces")
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.rows[0].len()
    }

    /// Number of time steps.
    pub fn steps(&self) -> usize {
        self.rows.len()
    }

    /// The observations of one time step.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn row(&self, t: TimeStep) -> &[Value] {
        &self.rows[t.raw() as usize]
    }

    /// Iterates over `(time step, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TimeStep, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .map(|(t, row)| (TimeStep(t as u64), row.as_slice()))
    }

    /// The values of a single node over time.
    pub fn column(&self, node: NodeId) -> Vec<Value> {
        self.rows.iter().map(|row| row[node.index()]).collect()
    }

    /// `Δ` — the largest value appearing anywhere in the trace.
    pub fn delta(&self) -> Value {
        self.rows
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// `σ = max_t σ(t)` — the largest size of the ε-neighbourhood of the k-th
    /// value over the whole trace (Sect. 2 of the paper).
    pub fn sigma(&self, k: usize, eps: Epsilon) -> usize {
        self.rows
            .iter()
            .map(|row| TopKView::new(row, k, eps).sigma())
            .max()
            .unwrap_or(0)
    }

    /// Appends another trace with the same number of nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RaggedTrace`] if the node counts differ.
    pub fn concat(&mut self, other: &Trace) -> Result<(), ModelError> {
        if other.n() != self.n() {
            return Err(ModelError::RaggedTrace {
                at: TimeStep(self.steps() as u64),
                expected: self.n(),
                found: other.n(),
            });
        }
        self.rows.extend(other.rows.iter().cloned());
        Ok(())
    }

    /// Serialises the trace to JSON (one array of arrays).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("traces are always serialisable")
    }

    /// Parses a trace from the JSON produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyTrace`] for syntactically valid but empty input
    /// and propagates shape errors from [`Trace::new`]; malformed JSON is also
    /// mapped onto [`ModelError::EmptyTrace`] to keep the error type closed.
    pub fn from_json(s: &str) -> Result<Trace, ModelError> {
        let parsed: Trace = serde_json::from_str(s).map_err(|_| ModelError::EmptyTrace)?;
        Trace::new(parsed.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shape() {
        assert_eq!(Trace::new(vec![]), Err(ModelError::EmptyTrace));
        assert_eq!(Trace::new(vec![vec![]]), Err(ModelError::EmptyTrace));
        assert!(matches!(
            Trace::new(vec![vec![1, 2], vec![3]]),
            Err(ModelError::RaggedTrace { .. })
        ));
        assert!(Trace::new(vec![vec![1, 2], vec![3, 4]]).is_ok());
    }

    #[test]
    fn accessors() {
        let t = Trace::from_fn(4, 3, |t, i| (t * 10 + i) as Value);
        assert_eq!(t.n(), 3);
        assert_eq!(t.steps(), 4);
        assert_eq!(t.row(TimeStep(2)), &[20, 21, 22]);
        assert_eq!(t.column(NodeId(1)), vec![1, 11, 21, 31]);
        assert_eq!(t.delta(), 32);
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[3].0, TimeStep(3));
    }

    #[test]
    fn sigma_counts_neighbourhood_maximum() {
        // Two steps: in the first all 4 values are far apart, in the second three
        // values sit inside the ε-neighbourhood of the top value.
        let t = Trace::new(vec![vec![1000, 10, 1, 1], vec![1000, 990, 980, 1]]).unwrap();
        assert_eq!(t.sigma(1, Epsilon::TENTH), 3);
        assert_eq!(t.sigma(1, Epsilon::new(1, 1000).unwrap()), 1);
    }

    #[test]
    fn concat_checks_node_count() {
        let mut a = Trace::from_fn(2, 3, |_, i| i as Value);
        let b = Trace::from_fn(1, 3, |_, i| (i + 10) as Value);
        a.concat(&b).unwrap();
        assert_eq!(a.steps(), 3);
        assert_eq!(a.row(TimeStep(2)), &[10, 11, 12]);
        let c = Trace::from_fn(1, 2, |_, i| i as Value);
        assert!(a.concat(&c).is_err());
    }

    #[test]
    fn json_roundtrip() {
        let t = Trace::from_fn(3, 2, |t, i| (t + i) as Value);
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(t, back);
        assert!(Trace::from_json("not json").is_err());
        assert!(Trace::from_json("{\"rows\": []}").is_err());
    }
}
