//! Zipf-distributed web-server load workload.
//!
//! The paper motivates top-k monitoring with "a central load balancer within a
//! local cluster of webservers \[that\] is interested in keeping track of those
//! nodes which are facing the highest loads". Real request loads are heavy-tailed
//! and bursty, so this workload models every node's load as
//!
//! `load_i(t) = base_i · season(t) · burst_i(t) + noise`
//!
//! where `base_i ∝ 1 / rank_i^s` is a Zipf profile over the nodes (a few nodes
//! serve most of the traffic), `season(t)` is a slow global modulation (diurnal
//! pattern compressed into `period` steps), and `burst_i(t)` occasionally
//! multiplies a node's load for a few steps (flash crowd). Node ranks are shuffled
//! so node ids carry no information.

use crate::Workload;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topk_model::prelude::*;

/// Heavy-tailed, bursty load workload (web-server scenario).
#[derive(Debug, Clone)]
pub struct ZipfLoadWorkload {
    base: Vec<f64>,
    scale: f64,
    period: u64,
    burst_prob: f64,
    burst_remaining: Vec<u32>,
    step: u64,
    rng: ChaCha8Rng,
}

impl ZipfLoadWorkload {
    /// Creates a Zipf load workload over `n` nodes.
    ///
    /// * `exponent` — Zipf exponent `s` (1.0 is the classic web distribution),
    /// * `peak_load` — approximate load of the busiest node at the seasonal peak,
    /// * `period` — length of the seasonal cycle in steps (0 disables seasonality),
    /// * `burst_prob` — per-node, per-step probability of starting a 5–20 step
    ///   burst that multiplies the node's load by 4.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `peak_load == 0` or `burst_prob ∉ [0, 1]`.
    pub fn new(
        n: usize,
        exponent: f64,
        peak_load: Value,
        period: u64,
        burst_prob: f64,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(peak_load > 0, "peak load must be positive");
        assert!(
            (0.0..=1.0).contains(&burst_prob),
            "burst_prob must be a probability"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ranks: Vec<usize> = (0..n).collect();
        ranks.shuffle(&mut rng);
        let mut base = vec![0.0; n];
        for (rank, &node) in ranks.iter().enumerate() {
            base[node] = 1.0 / ((rank + 1) as f64).powf(exponent);
        }
        ZipfLoadWorkload {
            base,
            scale: peak_load as f64,
            period,
            burst_prob,
            burst_remaining: vec![0; n],
            step: 0,
            rng,
        }
    }

    /// The default configuration used by the `load_balancer` example: 64 servers,
    /// exponent 1.1, peak load 100 000 requests/s, a 500-step day, 0.5 % bursts.
    pub fn web_cluster(n: usize, seed: u64) -> Self {
        ZipfLoadWorkload::new(n, 1.1, 100_000, 500, 0.005, seed)
    }

    fn season(&self) -> f64 {
        if self.period == 0 {
            return 1.0;
        }
        let phase = (self.step % self.period) as f64 / self.period as f64;
        // Smooth day/night cycle between 0.4 and 1.0.
        0.7 + 0.3 * (2.0 * std::f64::consts::PI * phase).sin()
    }
}

impl Workload for ZipfLoadWorkload {
    fn n(&self) -> usize {
        self.base.len()
    }

    fn next_step(&mut self) -> Vec<Value> {
        let season = self.season();
        self.step += 1;
        let n = self.base.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if self.burst_remaining[i] > 0 {
                self.burst_remaining[i] -= 1;
            } else if self.rng.gen_bool(self.burst_prob) {
                self.burst_remaining[i] = self.rng.gen_range(5..=20);
            }
            let burst = if self.burst_remaining[i] > 0 {
                4.0
            } else {
                1.0
            };
            let noise = self.rng.gen_range(0.9..1.1);
            let load = self.base[i] * self.scale * season * burst * noise;
            out.push(load.max(1.0) as Value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_are_heavy_tailed() {
        let mut w = ZipfLoadWorkload::new(100, 1.0, 1_000_000, 0, 0.0, 5);
        let row = w.next_step();
        let mut sorted = row.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = sorted[..10].iter().sum();
        let total: u64 = sorted.iter().sum();
        assert!(
            top10 * 2 > total,
            "top 10 of 100 nodes should carry more than half the load"
        );
    }

    #[test]
    fn bursts_multiply_load() {
        // With burst probability 1 every node bursts immediately.
        let mut quiet = ZipfLoadWorkload::new(10, 1.0, 10_000, 0, 0.0, 9);
        let mut bursty = ZipfLoadWorkload::new(10, 1.0, 10_000, 0, 1.0, 9);
        let q = quiet.next_step();
        // Skip the first step (bursts start after the flag is set).
        bursty.next_step();
        let b = bursty.next_step();
        let q_total: u64 = q.iter().sum();
        let b_total: u64 = b.iter().sum();
        assert!(
            b_total > 2 * q_total,
            "bursts should raise total load substantially"
        );
    }

    #[test]
    fn seasonality_modulates_load() {
        let mut w = ZipfLoadWorkload::new(10, 1.0, 100_000, 100, 0.0, 3);
        let mut totals = Vec::new();
        for _ in 0..100 {
            totals.push(w.next_step().iter().sum::<u64>());
        }
        let max = *totals.iter().max().unwrap() as f64;
        let min = *totals.iter().min().unwrap() as f64;
        assert!(max / min > 1.5, "seasonal swing too small: {min}..{max}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = ZipfLoadWorkload::web_cluster(16, 1);
        let mut b = ZipfLoadWorkload::web_cluster(16, 1);
        assert_eq!(a.generate(50), b.generate(50));
    }

    #[test]
    fn values_are_positive() {
        let mut w = ZipfLoadWorkload::web_cluster(32, 2);
        for _ in 0..50 {
            assert!(w.next_step().iter().all(|&v| v >= 1));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_nodes() {
        let _ = ZipfLoadWorkload::new(0, 1.0, 100, 0, 0.0, 0);
    }
}
