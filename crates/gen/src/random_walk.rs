//! Bounded random-walk workload.
//!
//! Every node performs an independent, lazy random walk on `{0, …, Δ}`: at each
//! step it stays put with probability `1 − move_prob` and otherwise moves up or
//! down by a step drawn uniformly from `1..=max_step`. This models slowly
//! drifting quantities (queue lengths, temperatures, load averages) — the kind of
//! input for which filter-based algorithms were designed: values usually stay
//! inside their filters and communication is rare.

use crate::Workload;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topk_model::prelude::*;

/// Configuration and state of the random-walk workload.
#[derive(Debug, Clone)]
pub struct RandomWalkWorkload {
    current: Vec<Value>,
    delta: Value,
    max_step: Value,
    move_prob: f64,
    rng: ChaCha8Rng,
}

impl RandomWalkWorkload {
    /// Creates a workload of `n` nodes walking on `{0, …, delta}`.
    ///
    /// Initial positions are drawn uniformly at random. `max_step` is the largest
    /// single-step displacement and `move_prob ∈ [0, 1]` the probability that a
    /// node moves at all in a given step.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `delta == 0`, `max_step == 0` or `move_prob` is not in
    /// `[0, 1]`.
    pub fn new(n: usize, delta: Value, max_step: Value, move_prob: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(delta > 0, "delta must be positive");
        assert!(max_step > 0, "max_step must be positive");
        assert!(
            (0.0..=1.0).contains(&move_prob),
            "move_prob must be a probability"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let current = (0..n).map(|_| rng.gen_range(0..=delta)).collect();
        RandomWalkWorkload {
            current,
            delta,
            max_step,
            move_prob,
            rng,
        }
    }

    /// A quiet configuration: small steps, rare moves. Handy default for examples.
    pub fn quiet(n: usize, delta: Value, seed: u64) -> Self {
        RandomWalkWorkload::new(n, delta, (delta / 100).max(1), 0.2, seed)
    }

    /// A volatile configuration: large steps, every node moves every step.
    pub fn volatile(n: usize, delta: Value, seed: u64) -> Self {
        RandomWalkWorkload::new(n, delta, (delta / 10).max(1), 1.0, seed)
    }

    /// The walk's upper bound `Δ`.
    pub fn delta(&self) -> Value {
        self.delta
    }
}

impl Workload for RandomWalkWorkload {
    fn n(&self) -> usize {
        self.current.len()
    }

    fn next_step(&mut self) -> Vec<Value> {
        for v in &mut self.current {
            if !self.rng.gen_bool(self.move_prob) {
                continue;
            }
            let step = self.rng.gen_range(1..=self.max_step);
            if self.rng.gen_bool(0.5) {
                *v = v.saturating_add(step).min(self.delta);
            } else {
                *v = v.saturating_sub(step);
            }
        }
        self.current.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn values_stay_in_range() {
        let mut w = RandomWalkWorkload::new(10, 1000, 50, 0.8, 42);
        for _ in 0..200 {
            let row = w.next_step();
            assert_eq!(row.len(), 10);
            assert!(row.iter().all(|&v| v <= 1000));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = RandomWalkWorkload::new(5, 100, 3, 0.5, 7);
        let mut b = RandomWalkWorkload::new(5, 100, 3, 0.5, 7);
        assert_eq!(a.generate(50), b.generate(50));
        let mut c = RandomWalkWorkload::new(5, 100, 3, 0.5, 8);
        assert_ne!(a.generate(50), c.generate(50));
    }

    #[test]
    fn zero_move_probability_freezes_values() {
        let mut w = RandomWalkWorkload::new(4, 100, 10, 0.0, 1);
        let first = w.next_step();
        for _ in 0..20 {
            assert_eq!(w.next_step(), first);
        }
    }

    #[test]
    fn presets_have_expected_volatility() {
        let steps = 100;
        let changed = |mut w: RandomWalkWorkload| {
            let mut changes = 0usize;
            let mut prev = w.next_step();
            for _ in 0..steps {
                let next = w.next_step();
                changes += prev.iter().zip(&next).filter(|(a, b)| a != b).count();
                prev = next;
            }
            changes
        };
        let quiet = changed(RandomWalkWorkload::quiet(10, 10_000, 3));
        let volatile = changed(RandomWalkWorkload::volatile(10, 10_000, 3));
        assert!(
            volatile > quiet,
            "volatile preset ({volatile}) should change more often than quiet ({quiet})"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_zero_nodes() {
        let _ = RandomWalkWorkload::new(0, 10, 1, 0.5, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_probability() {
        let _ = RandomWalkWorkload::new(1, 10, 1, 1.5, 0);
    }

    proptest! {
        #[test]
        fn single_step_displacement_is_bounded(
            seed in 0u64..1000, max_step in 1u64..20, delta in 100u64..10_000
        ) {
            let mut w = RandomWalkWorkload::new(6, delta, max_step, 1.0, seed);
            let a = w.next_step();
            let b = w.next_step();
            for (x, y) in a.iter().zip(&b) {
                prop_assert!(x.abs_diff(*y) <= max_step);
            }
        }
    }
}
