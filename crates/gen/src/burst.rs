//! Correlated-burst workload: flash crowds that hit whole node groups at once.
//!
//! The Zipf workload models *independent* per-node bursts; real load spikes are
//! correlated — a viral object or a failed-over peer multiplies the load of a
//! whole rack at the same instant. Correlated bursts are the worst case for
//! per-node filters: every member of the group crosses its upper bound in the
//! same step, so the online algorithm faces a synchronized violation burst
//! while the offline OPT pays a single phase boundary. The competitive ratio
//! under correlated arrivals is therefore a different quantity from the ratio
//! under independent noise, which is why the campaign grid carries this family
//! separately.
//!
//! Model: node `i` has a stable base load; with probability `burst_prob` per
//! step a burst starts on a uniformly random *contiguous* group of `group`
//! nodes and multiplies their load by `factor` for 5–15 steps. Bursts may
//! overlap (the factors do not stack — a node is either bursting or not).

use crate::Workload;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topk_model::prelude::*;

/// Workload with correlated load bursts over contiguous node groups.
#[derive(Debug, Clone)]
pub struct CorrelatedBurstWorkload {
    base: Vec<Value>,
    factor: u64,
    group: usize,
    burst_prob: f64,
    /// Active bursts as `(first node, steps remaining)`.
    bursts: Vec<(usize, u32)>,
    rng: ChaCha8Rng,
}

impl CorrelatedBurstWorkload {
    /// Creates the workload.
    ///
    /// * `base_load` — approximate load scale; per-node bases are drawn from
    ///   `[base_load / 2, base_load]`,
    /// * `factor` — load multiplier while a node is inside an active burst,
    /// * `group` — number of contiguous nodes each burst covers,
    /// * `burst_prob` — per-step probability that a new burst starts.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `base_load < 16`, `factor < 2`, `group ∉ 1..=n` or
    /// `burst_prob ∉ [0, 1]`.
    pub fn new(
        n: usize,
        base_load: Value,
        factor: u64,
        group: usize,
        burst_prob: f64,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(base_load >= 16, "base load too small for meaningful noise");
        assert!(factor >= 2, "a burst must at least double the load");
        assert!(group >= 1 && group <= n, "group must be in 1..=n");
        assert!(
            (0.0..=1.0).contains(&burst_prob),
            "burst_prob must be a probability"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base = (0..n)
            .map(|_| rng.gen_range(base_load / 2..=base_load))
            .collect();
        CorrelatedBurstWorkload {
            base,
            factor,
            group,
            burst_prob,
            bursts: Vec::new(),
            rng,
        }
    }

    /// Number of bursts currently in flight.
    pub fn active_bursts(&self) -> usize {
        self.bursts.len()
    }

    /// Nodes each burst covers.
    pub fn group(&self) -> usize {
        self.group
    }
}

impl Workload for CorrelatedBurstWorkload {
    fn n(&self) -> usize {
        self.base.len()
    }

    fn next_step(&mut self) -> Vec<Value> {
        let n = self.base.len();
        for b in &mut self.bursts {
            b.1 -= 1;
        }
        self.bursts.retain(|&(_, remaining)| remaining > 0);
        if self.rng.gen_bool(self.burst_prob) {
            let start = self.rng.gen_range(0..=n - self.group);
            let len = self.rng.gen_range(5..=15u32);
            self.bursts.push((start, len));
        }
        (0..n)
            .map(|i| {
                let bursting = self
                    .bursts
                    .iter()
                    .any(|&(start, _)| i >= start && i < start + self.group);
                let load = if bursting {
                    self.base[i].saturating_mul(self.factor)
                } else {
                    self.base[i]
                };
                // ±1/16 multiplicative noise, never touching zero (saturating:
                // a bursting load near Value::MAX must degrade, not overflow).
                let amp = (load / 16).max(1);
                load.saturating_add(self.rng.gen_range(0..=2 * amp))
                    .saturating_sub(amp)
                    .max(1)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_lift_a_contiguous_group_together() {
        // burst_prob = 1: a burst starts immediately and covers `group` nodes.
        let mut w = CorrelatedBurstWorkload::new(32, 10_000, 8, 6, 1.0, 5);
        let row = w.next_step();
        assert!(w.active_bursts() >= 1);
        let lifted: Vec<usize> = (0..32).filter(|&i| row[i] > 30_000).collect();
        assert!(
            lifted.len() >= 6,
            "at least one whole group must burst: {lifted:?}"
        );
        // The lifted set contains a full contiguous window of 6 nodes.
        let contiguous = lifted.windows(6).any(|w| w[5] - w[0] == 5);
        assert!(contiguous, "burst not contiguous: {lifted:?}");
    }

    #[test]
    fn no_bursts_means_stable_loads() {
        let mut w = CorrelatedBurstWorkload::new(16, 1000, 4, 4, 0.0, 9);
        for _ in 0..50 {
            let row = w.next_step();
            assert_eq!(w.active_bursts(), 0);
            for (i, &v) in row.iter().enumerate() {
                // Base ∈ [500, 1000], noise ±1/16 → always within [400, 1100].
                assert!((400..=1100).contains(&v), "node {i} load {v} out of band");
            }
        }
    }

    #[test]
    fn bursts_expire() {
        let mut w = CorrelatedBurstWorkload::new(8, 1000, 4, 2, 0.0, 3);
        w.bursts.push((0, 3));
        for _ in 0..3 {
            w.next_step();
        }
        assert_eq!(w.active_bursts(), 0, "bursts must expire after their span");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = CorrelatedBurstWorkload::new(20, 50_000, 6, 5, 0.2, 11);
        let mut b = CorrelatedBurstWorkload::new(20, 50_000, 6, 5, 0.2, 11);
        assert_eq!(a.generate(60), b.generate(60));
    }

    #[test]
    fn accessors() {
        let w = CorrelatedBurstWorkload::new(10, 1000, 4, 3, 0.5, 1);
        assert_eq!(w.n(), 10);
        assert_eq!(w.group(), 3);
        assert_eq!(w.active_bursts(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_group() {
        let _ = CorrelatedBurstWorkload::new(4, 1000, 4, 5, 0.1, 0);
    }
}
