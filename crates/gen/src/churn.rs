//! Churn/flat-line workload: nodes collapse into the ε-neighbourhood and leave.
//!
//! The dense-regime analysis (Theorem 5.8) treats `σ` — the size of the
//! ε-neighbourhood of the k-th value — as a fixed parameter. Under churn it is
//! anything but: sensors die and flat-line at a floor value, rebooted nodes
//! come back *inside* the neighbourhood, and the population of the dense pack
//! breathes over time. This workload stresses exactly that axis: every pack
//! node flips between *live* (oscillating inside the ε/2-neighbourhood of the
//! pivot `z`) and *flat-lined* (pinned at the constant floor `1`) with
//! probability `churn_prob` per step, so `σ(t)` performs a random walk between
//! 1 and the pack size while the flat-lined population costs OPT nothing.
//!
//! A small set of `high` leader nodes stays clearly above the neighbourhood so
//! the top of the ranking is stable; choosing `k > high` puts the k-th value
//! inside the breathing pack.

use crate::Workload;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topk_model::prelude::*;

/// The constant value a flat-lined node reports.
pub const FLATLINE_VALUE: Value = 1;

/// Workload whose ε-neighbourhood population churns over time.
#[derive(Debug, Clone)]
pub struct ChurnFlatlineWorkload {
    n: usize,
    high: usize,
    z: Value,
    churn_prob: f64,
    /// Liveness of the pack nodes `high..n`.
    alive: Vec<bool>,
    step: u64,
    hi_base: Value,
    inner_lo: Value,
    inner_hi: Value,
    rng: ChaCha8Rng,
}

impl ChurnFlatlineWorkload {
    /// Creates the workload.
    ///
    /// * `high` — number of stable leader nodes clearly above the
    ///   neighbourhood (`high < n`; the remaining `n - high` nodes churn),
    /// * `z` — pivot of the ε-neighbourhood live pack nodes oscillate in,
    /// * `eps` — the neighbourhood width,
    /// * `churn_prob` — per-node, per-step probability of flipping between
    ///   live and flat-lined.
    ///
    /// # Panics
    ///
    /// Panics if `high >= n`, `z < 64` or `churn_prob ∉ [0, 1]`.
    pub fn new(n: usize, high: usize, z: Value, eps: Epsilon, churn_prob: f64, seed: u64) -> Self {
        assert!(high < n, "need at least one churning node");
        assert!(z >= 64, "pivot too small for distinct value bands");
        assert!(
            (0.0..=1.0).contains(&churn_prob),
            "churn_prob must be a probability"
        );
        let bands = crate::band::bands(z, eps);
        let (inner_lo, inner_hi) = (bands.inner_lo, bands.inner_hi);
        let hi_base = bands.clearly_above;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let alive = (0..n - high).map(|_| rng.gen_bool(0.5)).collect();
        ChurnFlatlineWorkload {
            n,
            high,
            z,
            churn_prob,
            alive,
            step: 0,
            hi_base,
            inner_lo,
            inner_hi,
            rng,
        }
    }

    /// Number of currently live pack nodes (the instantaneous pack size).
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// The pivot value `z`.
    pub fn pivot(&self) -> Value {
        self.z
    }
}

impl Workload for ChurnFlatlineWorkload {
    fn n(&self) -> usize {
        self.n
    }

    fn next_step(&mut self) -> Vec<Value> {
        let pack = self.n - self.high;
        for a in &mut self.alive {
            if self.rng.gen_bool(self.churn_prob) {
                *a = !*a;
            }
        }
        if self.alive.iter().all(|&a| !a) {
            // Never let the whole pack flat-line: revive one deterministically.
            let i = (self.step as usize) % pack;
            self.alive[i] = true;
        }
        self.step += 1;
        let (lo, hi) = (self.inner_lo, self.inner_hi);
        let mut row = Vec::with_capacity(self.n);
        for i in 0..self.high {
            // Leaders jitter mildly within their clearly-above band.
            row.push(
                self.hi_base
                    .saturating_add(i as Value)
                    .saturating_add(self.rng.gen_range(0..=self.hi_base / 64)),
            );
        }
        for i in 0..pack {
            row.push(if self.alive[i] {
                self.rng.gen_range(lo..=hi)
            } else {
                FLATLINE_VALUE
            });
        }
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_nodes_sit_in_the_neighbourhood_and_dead_ones_flatline() {
        let eps = Epsilon::TENTH;
        let mut w = ChurnFlatlineWorkload::new(20, 3, 100_000, eps, 0.1, 5);
        for _ in 0..80 {
            let row = w.next_step();
            for (i, &v) in row.iter().enumerate().skip(3) {
                if v == FLATLINE_VALUE {
                    assert!(eps.clearly_smaller(v, w.pivot()));
                } else {
                    assert!(
                        eps.in_neighbourhood(v, w.pivot()),
                        "live node {i} value {v} outside the neighbourhood"
                    );
                }
            }
            // Leaders stay clearly above the pivot's neighbourhood.
            for &v in &row[..3] {
                assert!(eps.clearly_larger(v, eps.scale_up(w.pivot())));
            }
        }
    }

    #[test]
    fn pack_population_breathes() {
        let mut w = ChurnFlatlineWorkload::new(24, 2, 4096, Epsilon::TENTH, 0.15, 9);
        let mut sizes = Vec::new();
        for _ in 0..100 {
            w.next_step();
            sizes.push(w.alive_count());
        }
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= 1, "the pack must never fully flat-line");
        assert!(
            max - min >= 4,
            "churn must move the pack size: {min}..{max} over 100 steps"
        );
    }

    #[test]
    fn zero_churn_freezes_liveness() {
        let mut w = ChurnFlatlineWorkload::new(10, 1, 1000, Epsilon::HALF, 0.0, 2);
        w.next_step();
        let first = w.alive_count();
        for _ in 0..20 {
            w.next_step();
            assert_eq!(w.alive_count(), first);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = ChurnFlatlineWorkload::new(15, 2, 50_000, Epsilon::TENTH, 0.2, 4);
        let mut b = ChurnFlatlineWorkload::new(15, 2, 50_000, Epsilon::TENTH, 0.2, 4);
        assert_eq!(a.generate(60), b.generate(60));
    }

    #[test]
    #[should_panic]
    fn rejects_all_leaders() {
        let _ = ChurnFlatlineWorkload::new(4, 4, 1000, Epsilon::HALF, 0.1, 0);
    }
}
