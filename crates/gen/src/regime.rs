//! Regime-switching workload: quiet → dense → adversarial segments in a loop.
//!
//! The paper's analysis distinguishes three input regimes — mostly-silent
//! streams where filters absorb everything (Corollary 3.3 / Theorem 4.5),
//! streams with a dense ε-neighbourhood around the k-th value (Theorem 5.8) and
//! adversarial leadership churn (Theorem 5.1) — but a deployed monitor never
//! gets to pick its regime: the input drifts between them. This workload
//! switches between the three regimes every `segment_len` steps, so a single
//! run exercises every protocol's behaviour *across* regime boundaries (the
//! transitions themselves are where filters must be torn down and rebuilt).
//!
//! Layout: nodes `0..k` are stable leaders clearly above the ε-neighbourhood of
//! the pivot `z`; nodes `k..k+sigma` are the switching pack; the rest sit
//! clearly below. Per regime:
//!
//! * **quiet** — everything parks in its home band; nodes jitter rarely and by
//!   a tiny amount, so ratcheted filters converge to silence;
//! * **dense** — the pack oscillates inside the ε/2-neighbourhood of `z`
//!   (σ(t) ≈ `sigma`, the `DenseProtocol` regime);
//! * **adversarial** — one pack node per step spikes above the leaders and
//!   collapses back, forcing a leadership change per step like the explicit
//!   lower-bound instance (but obliviously, so traces can be pre-materialised).

use crate::Workload;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use topk_model::prelude::*;

/// One of the three input regimes a [`RegimeSwitchWorkload`] cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Values park in their home bands; communication should be rare.
    Quiet,
    /// `sigma` nodes oscillate inside the ε-neighbourhood of the pivot.
    Dense,
    /// One pack node per step spikes above the leaders and collapses back.
    Adversarial,
}

impl Regime {
    /// All regimes in cycle order.
    pub const CYCLE: [Regime; 3] = [Regime::Quiet, Regime::Dense, Regime::Adversarial];

    /// Stable lowercase name (used as a key in campaign reports).
    pub fn name(self) -> &'static str {
        match self {
            Regime::Quiet => "quiet",
            Regime::Dense => "dense",
            Regime::Adversarial => "adversarial",
        }
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Workload cycling quiet → dense → adversarial segments of equal length.
#[derive(Debug, Clone)]
pub struct RegimeSwitchWorkload {
    n: usize,
    k: usize,
    sigma: usize,
    eps: Epsilon,
    segment_len: u64,
    step: u64,
    /// Persistent values; regimes mutate only the bands they own so segment
    /// transitions are visible as (small) bursts of filter violations.
    current: Vec<Value>,
    /// Pack member spiked in the previous adversarial step (to collapse back).
    spiked: Option<usize>,
    hi_base: Value,
    inner_lo: Value,
    inner_hi: Value,
    low_hi: Value,
    rng: ChaCha8Rng,
}

impl RegimeSwitchWorkload {
    /// Creates the workload.
    ///
    /// * `k` — number of stable leader nodes (use the same `k` you monitor),
    /// * `sigma` — size of the switching pack (`k + sigma ≤ n`),
    /// * `z` — pivot value of the dense ε-neighbourhood,
    /// * `eps` — the neighbourhood width,
    /// * `segment_len` — steps per regime segment.
    ///
    /// # Panics
    ///
    /// Panics if the group sizes are inconsistent, `segment_len == 0` or `z`
    /// is too small for the bands to be distinct (`z < 64`).
    pub fn new(
        n: usize,
        k: usize,
        sigma: usize,
        z: Value,
        eps: Epsilon,
        segment_len: u64,
        seed: u64,
    ) -> Self {
        assert!(k >= 1, "need at least one leader");
        assert!(sigma >= 1, "need at least one pack node");
        assert!(k + sigma <= n, "k + sigma must not exceed n");
        assert!(segment_len >= 1, "segments must be non-empty");
        assert!(z >= 64, "pivot too small for distinct value bands");
        let bands = crate::band::bands(z, eps);
        let (inner_lo, inner_hi) = (bands.inner_lo, bands.inner_hi);
        // Clearly above every value the pack can take, even after upward jitter.
        let hi_base = bands.clearly_above;
        // Clearly below the whole neighbourhood.
        let low_hi = bands.clearly_below;
        let mut w = RegimeSwitchWorkload {
            n,
            k,
            sigma,
            eps,
            segment_len,
            step: 0,
            current: vec![0; n],
            spiked: None,
            hi_base,
            inner_lo,
            inner_hi,
            low_hi,
            rng: ChaCha8Rng::seed_from_u64(seed),
        };
        for i in 0..n {
            w.current[i] = w.home_value(i);
        }
        w
    }

    /// The regime active at (0-based) step `step`.
    pub fn regime_of_step(&self, step: u64) -> Regime {
        Regime::CYCLE[((step / self.segment_len) % 3) as usize]
    }

    /// The regime the *next* call to `next_step` will draw from.
    pub fn current_regime(&self) -> Regime {
        self.regime_of_step(self.step)
    }

    /// Steps per regime segment.
    pub fn segment_len(&self) -> u64 {
        self.segment_len
    }

    /// Size of the switching pack.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// The neighbourhood width the dense segments oscillate within.
    pub fn eps(&self) -> Epsilon {
        self.eps
    }

    /// The parked (out-of-regime) value of node `i`.
    fn home_value(&self, i: usize) -> Value {
        if i < self.k {
            // Leaders are spread out so their relative order is stable.
            self.hi_base.saturating_add((self.k - i) as Value)
        } else if i < self.k + self.sigma {
            // The pack parks just below the neighbourhood (it "left").
            self.low_hi
        } else {
            1 + (i as Value) % self.low_hi
        }
    }

    /// Rare, tiny in-band jitter applied to every node in quiet segments.
    fn quiet_jitter(&mut self, i: usize) {
        if !self.rng.gen_bool(0.05) {
            return;
        }
        let home = self.home_value(i);
        let amp = (home / 128).max(1);
        let offset = self.rng.gen_range(0..=2 * amp);
        self.current[i] = home.saturating_add(offset).saturating_sub(amp).max(1);
    }
}

impl Workload for RegimeSwitchWorkload {
    fn n(&self) -> usize {
        self.n
    }

    fn next_step(&mut self) -> Vec<Value> {
        let regime = self.current_regime();
        let t = self.step;
        self.step += 1;
        // A spike never outlives its step, whatever regime follows.
        if let Some(i) = self.spiked.take() {
            self.current[i] = self.home_value(i);
        }
        match regime {
            Regime::Quiet => {
                for i in 0..self.n {
                    if self.current[i] != self.home_value(i) {
                        // First quiet step after another regime: park the node.
                        self.current[i] = self.home_value(i);
                    } else {
                        self.quiet_jitter(i);
                    }
                }
            }
            Regime::Dense => {
                let (lo, hi) = (self.inner_lo, self.inner_hi);
                for i in self.k..self.k + self.sigma {
                    self.current[i] = self.rng.gen_range(lo..=hi);
                }
            }
            Regime::Adversarial => {
                for i in 0..self.n {
                    if self.current[i] != self.home_value(i) {
                        self.current[i] = self.home_value(i);
                    }
                }
                let victim = self.k + (t % self.sigma as u64) as usize;
                self.current[victim] = self.hi_base.saturating_mul(4);
                self.spiked = Some(victim);
            }
        }
        self.current.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> RegimeSwitchWorkload {
        RegimeSwitchWorkload::new(16, 2, 6, 100_000, Epsilon::TENTH, 10, 7)
    }

    #[test]
    fn regimes_cycle_with_segment_len() {
        let w = workload();
        assert_eq!(w.segment_len(), 10);
        assert_eq!(w.regime_of_step(0), Regime::Quiet);
        assert_eq!(w.regime_of_step(9), Regime::Quiet);
        assert_eq!(w.regime_of_step(10), Regime::Dense);
        assert_eq!(w.regime_of_step(20), Regime::Adversarial);
        assert_eq!(w.regime_of_step(30), Regime::Quiet);
        assert_eq!(format!("{}", Regime::Dense), "dense");
    }

    #[test]
    fn dense_segments_have_a_dense_neighbourhood() {
        let mut w = workload();
        let eps = Epsilon::TENTH;
        for t in 0..60u64 {
            let row = w.next_step();
            if w.regime_of_step(t) == Regime::Dense {
                // k = 3 lands on the pack (2 leaders + pack), and the whole
                // pack sits inside the ε-neighbourhood of the k-th value.
                let view = TopKView::new(&row, 3, eps);
                assert!(
                    view.sigma() >= 6,
                    "dense step {t} has sigma {} < pack size",
                    view.sigma()
                );
            }
        }
    }

    #[test]
    fn adversarial_segments_change_the_leader_every_step() {
        let mut w = workload();
        let mut rows = Vec::new();
        for _ in 0..30 {
            rows.push(w.next_step());
        }
        // Steps 20..30 are adversarial: the argmax rotates through the pack.
        let argmax = |row: &[Value]| {
            row.iter()
                .enumerate()
                .max_by_key(|&(i, v)| (*v, std::cmp::Reverse(i)))
                .map(|(i, _)| i)
                .unwrap()
        };
        let leaders: Vec<usize> = rows[20..30].iter().map(|r| argmax(r)).collect();
        for pair in leaders.windows(2) {
            assert_ne!(pair[0], pair[1], "spike must move every step: {leaders:?}");
        }
        // And the spiking node is a pack member, clearly above the leaders.
        for (i, row) in rows[20..30].iter().enumerate() {
            let m = argmax(row);
            assert!((2..8).contains(&m), "step {i}: spike outside pack: {m}");
            assert!(Epsilon::TENTH.clearly_larger(row[m], row[0]));
        }
    }

    #[test]
    fn quiet_segments_rarely_change() {
        let mut w = workload();
        let mut prev = w.next_step();
        let mut changes = 0usize;
        for _ in 1..10 {
            let next = w.next_step();
            changes += prev.iter().zip(&next).filter(|(a, b)| a != b).count();
            prev = next;
        }
        // 16 nodes × 9 steps with 5 % jitter probability: far below half.
        assert!(changes < 40, "quiet segment too noisy: {changes} changes");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = RegimeSwitchWorkload::new(12, 2, 5, 4096, Epsilon::HALF, 7, 3);
        let mut b = RegimeSwitchWorkload::new(12, 2, 5, 4096, Epsilon::HALF, 7, 3);
        assert_eq!(a.generate(50), b.generate(50));
    }

    #[test]
    fn values_stay_positive() {
        let mut w = RegimeSwitchWorkload::new(9, 1, 4, 64, Epsilon::HALF, 3, 1);
        for _ in 0..40 {
            assert!(w.next_step().iter().all(|&v| v >= 1));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_inconsistent_sizes() {
        let _ = RegimeSwitchWorkload::new(5, 3, 3, 1000, Epsilon::HALF, 5, 0);
    }
}
