//! The adaptive adversary from the lower-bound proof of Theorem 5.1.
//!
//! The construction: `σ ∈ [k+1, n]` nodes start at a common value `y₀` (the other
//! `n − σ` nodes hold small background values). In every step the adversary picks
//! one node that still holds `y₀` *and whose current filter would be violated* by
//! dropping it to `y₁ < (1 − ε)·y₀`, and drops it. Such a node must exist as long
//! as the online algorithm's filters are feasible, so the online algorithm is
//! forced to pay one message per step. After `σ − k` drops the phase ends: an
//! offline algorithm that knows which `k` nodes survive the phase pays only
//! `k + 1` messages (k unicast filters `[y₀, ∞)` plus one broadcast `[0, y₀]`),
//! giving the `Ω(σ/k)` gap. The adversary then lifts the dropped nodes back to
//! `y₀` (which violates no offline filter) and starts the next phase, extending
//! the stream to arbitrary length exactly as the proof describes.

use crate::AdaptiveWorkload;
use topk_model::prelude::*;

/// Adaptive lower-bound adversary (Theorem 5.1).
#[derive(Debug, Clone)]
pub struct LowerBoundAdversary {
    n: usize,
    k: usize,
    sigma: usize,
    y0: Value,
    y1: Value,
    state: Vec<Value>,
    dropped_this_phase: usize,
    phases_completed: usize,
    steps_emitted: usize,
}

impl LowerBoundAdversary {
    /// Creates the adversary.
    ///
    /// * `sigma` — number of nodes initially at `y₀`; must satisfy `k < sigma ≤ n`,
    /// * `eps` — the error the *online* algorithm is allowed; `y₁` is chosen just
    ///   below `(1 − ε)·y₀` so every drop leaves the ε-neighbourhood,
    /// * `y0` — the common starting value (must be large enough that
    ///   `(1 − ε)·y₀ ≥ 4`).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters.
    pub fn new(n: usize, k: usize, sigma: usize, y0: Value, eps: Epsilon) -> Self {
        assert!(k >= 1 && k < n, "need 1 <= k < n");
        assert!(sigma > k && sigma <= n, "need k < sigma <= n");
        let below = eps.scale_down(y0);
        assert!(below >= 4, "y0 too small for the construction");
        // Strictly below (1-ε)·y0 → clearly smaller than y0.
        let y1 = below - 1;
        let background = y1 / 2;
        let mut state = vec![background; n];
        for v in state.iter_mut().take(sigma) {
            *v = y0;
        }
        LowerBoundAdversary {
            n,
            k,
            sigma,
            y0,
            y1,
            state,
            dropped_this_phase: 0,
            phases_completed: 0,
            steps_emitted: 0,
        }
    }

    /// Number of completed adversary phases so far.
    pub fn phases_completed(&self) -> usize {
        self.phases_completed
    }

    /// Upper bound on the cost of the offline algorithm described in the proof:
    /// `k + 1` messages per completed phase plus the initial assignment.
    pub fn offline_cost_bound(&self) -> u64 {
        ((self.phases_completed + 1) * (self.k + 1)) as u64
    }

    /// Number of forced drops per phase (`σ − k`), i.e. the minimum number of
    /// filter violations the online algorithm suffers per phase.
    pub fn drops_per_phase(&self) -> usize {
        self.sigma - self.k
    }

    /// The common starting value `y₀`.
    pub fn y0(&self) -> Value {
        self.y0
    }

    /// The drop target `y₁ < (1 − ε)·y₀`.
    pub fn y1(&self) -> Value {
        self.y1
    }

    /// Picks the node to drop: a node still at `y₀` whose filter has a lower
    /// bound above `y₁` (so the drop is guaranteed to violate it). Falls back to
    /// any node still at `y₀` if the online algorithm left all of them unbounded
    /// below (in which case its output can not have been valid for long anyway).
    fn pick_victim(&self, filters: &[Filter]) -> Option<usize> {
        let candidates = (0..self.sigma).filter(|&i| self.state[i] == self.y0);
        let mut fallback = None;
        for i in candidates {
            if fallback.is_none() {
                fallback = Some(i);
            }
            let lo = filters.get(i).map_or(0, |f| f.lo());
            if lo > self.y1 {
                return Some(i);
            }
        }
        fallback
    }
}

impl AdaptiveWorkload for LowerBoundAdversary {
    fn n(&self) -> usize {
        self.n
    }

    fn next_step_adaptive(&mut self, filters: &[Filter]) -> Vec<Value> {
        self.steps_emitted += 1;
        // The very first step presents the initial configuration unchanged so the
        // online algorithm can set up its filters before the attack starts.
        if self.steps_emitted == 1 {
            return self.state.clone();
        }
        if self.dropped_this_phase == self.sigma - self.k {
            // Phase complete: lift every dropped node back to y0 and start over.
            for v in self.state.iter_mut().take(self.sigma) {
                *v = self.y0;
            }
            self.dropped_this_phase = 0;
            self.phases_completed += 1;
            return self.state.clone();
        }
        if let Some(victim) = self.pick_victim(filters) {
            self.state[victim] = self.y1;
            self.dropped_this_phase += 1;
        }
        self.state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filters_for(state: &[Value], k: usize, y0: Value) -> Vec<Filter> {
        // A plausible online filter assignment: nodes at y0 that the algorithm
        // outputs get [y0, ∞), the rest [0, y0]. We mark the first k nodes
        // holding y0 as the output.
        let mut out = Vec::with_capacity(state.len());
        let mut granted = 0;
        for &v in state {
            if v == y0 && granted < k {
                out.push(Filter::at_least(y0));
                granted += 1;
            } else {
                out.push(Filter::at_most(y0));
            }
        }
        out
    }

    #[test]
    fn initial_configuration_has_sigma_nodes_at_y0() {
        let eps = Epsilon::HALF;
        let mut adv = LowerBoundAdversary::new(10, 2, 6, 1000, eps);
        let row = adv.next_step_adaptive(&vec![Filter::FULL; 10]);
        assert_eq!(row.iter().filter(|&&v| v == 1000).count(), 6);
        assert!(row[6..].iter().all(|&v| v < adv.y1()));
    }

    #[test]
    fn drops_target_nodes_with_binding_filters() {
        let eps = Epsilon::HALF;
        let mut adv = LowerBoundAdversary::new(8, 2, 6, 1000, eps);
        let mut row = adv.next_step_adaptive(&[Filter::FULL; 8]);
        let mut drops = 0;
        for _ in 0..(6 - 2) {
            let filters = filters_for(&row, 2, 1000);
            let next = adv.next_step_adaptive(&filters);
            // Exactly one node moved, and it moved from y0 to y1.
            let changed: Vec<usize> = (0..8).filter(|&i| next[i] != row[i]).collect();
            assert_eq!(changed.len(), 1);
            let i = changed[0];
            assert_eq!(row[i], 1000);
            assert_eq!(next[i], adv.y1());
            // The victim had a binding filter (the adversary is adaptive).
            assert!(filters[i].lo() > adv.y1());
            drops += 1;
            row = next;
        }
        assert_eq!(drops, adv.drops_per_phase());
        // Next step resets the phase.
        let filters = filters_for(&row, 2, 1000);
        let next = adv.next_step_adaptive(&filters);
        assert_eq!(next.iter().filter(|&&v| v == 1000).count(), 6);
        assert_eq!(adv.phases_completed(), 1);
    }

    #[test]
    fn y1_is_clearly_smaller_than_y0() {
        let eps = Epsilon::new(1, 4).unwrap();
        let adv = LowerBoundAdversary::new(10, 3, 7, 10_000, eps);
        assert!(eps.clearly_smaller(adv.y1(), adv.y0()));
    }

    #[test]
    fn offline_cost_bound_grows_per_phase() {
        let eps = Epsilon::HALF;
        let mut adv = LowerBoundAdversary::new(6, 1, 4, 1000, eps);
        let initial_bound = adv.offline_cost_bound();
        assert_eq!(initial_bound, 2); // (0 completed + 1) * (k+1)
                                      // Run two full phases.
        let steps = 1 + 2 * (adv.drops_per_phase() + 1);
        for _ in 0..steps {
            let filters = vec![Filter::at_least(adv.y0()); 6];
            adv.next_step_adaptive(&filters);
        }
        assert!(adv.phases_completed() >= 2);
        assert_eq!(
            adv.offline_cost_bound(),
            ((adv.phases_completed() + 1) * 2) as u64
        );
    }

    #[test]
    fn adversary_output_always_admits_a_valid_k_output() {
        // Sanity: at every step at least k nodes hold a value that is not clearly
        // smaller than the k-th largest (namely the y0 nodes).
        let eps = Epsilon::HALF;
        let k = 3;
        let mut adv = LowerBoundAdversary::new(12, k, 9, 4096, eps);
        let mut filters = vec![Filter::FULL; 12];
        for _ in 0..40 {
            let row = adv.next_step_adaptive(&filters);
            let at_y0 = row.iter().filter(|&&v| v == 4096).count();
            assert!(at_y0 >= k, "fewer than k nodes left at y0");
            filters = filters_for(&row, k, 4096);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_sigma_not_larger_than_k() {
        let _ = LowerBoundAdversary::new(5, 3, 3, 1000, Epsilon::HALF);
    }
}
