//! Gap workload: the ε-approximate output is always unique.
//!
//! The top `k` nodes hold values around `high_base`, the remaining nodes around
//! `low_base`, with `low_base` chosen clearly smaller than `high_base` (for the
//! configured `ε`). Both groups jitter multiplicatively, and the whole landscape
//! can drift upward over time to exercise large `Δ`. Because the (k+1)-st value
//! stays clearly below the k-th, the ε-approximate output coincides with the
//! exact top-k set and `TopKProtocol` (Sect. 4 of the paper) is the algorithm of
//! choice; this is the workload behind experiment E4.

use crate::Workload;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topk_model::prelude::*;

/// Workload with a persistent multiplicative gap between ranks `k` and `k+1`.
#[derive(Debug, Clone)]
pub struct GapWorkload {
    n: usize,
    k: usize,
    high_base: Value,
    low_base: Value,
    jitter_permille: u64,
    drift_permille: u64,
    step: u64,
    /// Nodes `0..k` are the designated top group; a fixed assignment keeps the
    /// output literally constant, which is the regime the theorem's upper bound
    /// addresses (OPT communicates rarely).
    rng: ChaCha8Rng,
}

impl GapWorkload {
    /// Creates a gap workload.
    ///
    /// * `high_base` — centre of the top group's values,
    /// * `gap_factor` — `high_base / low_base`; must be large enough that the
    ///   jittered groups never overlap (≥ 4 is plenty for the default jitter),
    /// * `jitter_permille` — multiplicative jitter amplitude in ‰ of the base,
    /// * `drift_permille` — upward drift of both bases per step in ‰.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k >= n`, `high_base == 0` or `gap_factor < 2`.
    pub fn new(
        n: usize,
        k: usize,
        high_base: Value,
        gap_factor: u64,
        jitter_permille: u64,
        drift_permille: u64,
        seed: u64,
    ) -> Self {
        assert!(k >= 1 && k < n, "need 1 <= k < n");
        assert!(high_base > 0, "high_base must be positive");
        assert!(gap_factor >= 2, "gap_factor must be at least 2");
        GapWorkload {
            n,
            k,
            high_base,
            low_base: (high_base / gap_factor).max(1),
            jitter_permille: jitter_permille.min(500),
            drift_permille,
            step: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Default configuration used by the experiments: gap factor 8, 5 % jitter,
    /// no drift.
    pub fn standard(n: usize, k: usize, high_base: Value, seed: u64) -> Self {
        GapWorkload::new(n, k, high_base, 8, 50, 0, seed)
    }

    fn jitter(&mut self, base: Value) -> Value {
        if self.jitter_permille == 0 {
            return base;
        }
        let amplitude = base * self.jitter_permille / 1000;
        if amplitude == 0 {
            return base;
        }
        let offset = self.rng.gen_range(0..=2 * amplitude);
        (base + offset).saturating_sub(amplitude).max(1)
    }
}

impl Workload for GapWorkload {
    fn n(&self) -> usize {
        self.n
    }

    fn next_step(&mut self) -> Vec<Value> {
        let drift = 1000 + self.drift_permille * self.step;
        let high = self.high_base * drift / 1000;
        let low = self.low_base * drift / 1000;
        self.step += 1;
        (0..self.n)
            .map(|i| {
                if i < self.k {
                    self.jitter(high)
                } else {
                    self.jitter(low)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_always_unique() {
        let mut w = GapWorkload::standard(20, 4, 1_000_000, 11);
        let eps = Epsilon::HALF;
        for _ in 0..200 {
            let row = w.next_step();
            let view = TopKView::new(&row, 4, eps);
            assert!(view.unique_output(), "gap workload must keep a clear gap");
            // The designated group really is the top-k set.
            let top: Vec<usize> = view.exact_top_k().iter().map(|id| id.index()).collect();
            for i in top {
                assert!(i < 4);
            }
        }
    }

    #[test]
    fn drift_increases_values() {
        let mut w = GapWorkload::new(4, 1, 1000, 8, 0, 100, 3);
        let first = w.next_step()[0];
        for _ in 0..20 {
            w.next_step();
        }
        let later = w.next_step()[0];
        assert!(
            later > first,
            "drift must push values up ({first} -> {later})"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = GapWorkload::standard(10, 2, 10_000, 5);
        let mut b = GapWorkload::standard(10, 2, 10_000, 5);
        assert_eq!(a.generate(30), b.generate(30));
    }

    #[test]
    fn zero_jitter_is_constant_within_group() {
        let mut w = GapWorkload::new(6, 2, 1000, 4, 0, 0, 1);
        let row = w.next_step();
        assert!(row[..2].iter().all(|&v| v == row[0]));
        assert!(row[2..].iter().all(|&v| v == row[2]));
        assert!(row[0] > row[2]);
    }

    #[test]
    #[should_panic]
    fn rejects_k_equal_n() {
        let _ = GapWorkload::standard(4, 4, 100, 0);
    }
}
