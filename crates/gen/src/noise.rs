//! Noise-oscillation workload: a dense ε-neighbourhood around the k-th value.
//!
//! The introduction of the paper motivates the approximate problem with
//! "situations where lots of nodes observe values oscillating around the k-th
//! largest value". This workload constructs exactly that situation:
//!
//! * `sigma` nodes oscillate multiplicatively inside the ε-neighbourhood of a
//!   base value `z` (so `σ(t) ≈ sigma` every step),
//! * `high` nodes sit clearly above the neighbourhood,
//! * the remaining nodes sit clearly below it.
//!
//! For the exact problem this input forces communication almost every step (the
//! identity of the k-th node keeps changing); for the ε-approximate problem an
//! offline algorithm needs barely any communication — which is precisely the
//! regime in which the lower bound of Theorem 5.1 and the `DenseProtocol`
//! analysis (Theorem 5.8) live. Used by experiments E6 and E7.

use crate::Workload;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use topk_model::prelude::*;

/// Workload keeping `sigma` nodes inside the ε-neighbourhood of a pivot value.
#[derive(Debug, Clone)]
pub struct NoiseOscillationWorkload {
    n: usize,
    high: usize,
    sigma: usize,
    z: Value,
    eps: Epsilon,
    rng: ChaCha8Rng,
}

impl NoiseOscillationWorkload {
    /// Creates the workload.
    ///
    /// * `n` — number of nodes,
    /// * `high` — number of nodes held clearly above the neighbourhood,
    /// * `sigma` — number of nodes oscillating inside the ε-neighbourhood of `z`
    ///   (`high + sigma ≤ n` must hold and `sigma ≥ 1`),
    /// * `z` — the pivot value around which the neighbourhood is centred,
    /// * `eps` — the neighbourhood width.
    ///
    /// Choosing `k = high + 1 … high + sigma` makes the k-th value land inside
    /// the oscillating pack.
    ///
    /// # Panics
    ///
    /// Panics if the group sizes are inconsistent or `z` is too small for the
    /// oscillation to be non-trivial (`z < 16`).
    pub fn new(n: usize, high: usize, sigma: usize, z: Value, eps: Epsilon, seed: u64) -> Self {
        assert!(sigma >= 1, "need at least one oscillating node");
        assert!(high + sigma <= n, "high + sigma must not exceed n");
        assert!(z >= 16, "pivot too small for meaningful oscillation");
        NoiseOscillationWorkload {
            n,
            high,
            sigma,
            z,
            eps,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The pivot value `z`.
    pub fn pivot(&self) -> Value {
        self.z
    }

    /// Number of oscillating nodes (target `σ`).
    pub fn sigma(&self) -> usize {
        self.sigma
    }
}

impl Workload for NoiseOscillationWorkload {
    fn n(&self) -> usize {
        self.n
    }

    fn next_step(&mut self) -> Vec<Value> {
        // The oscillating pack is drawn from the inner (ε/2) band of z: any two
        // values in it are mutually within the ε-neighbourhood (see
        // `crate::band`), so every pack member stays inside the neighbourhood of
        // the k-th largest value whenever that value itself belongs to the pack.
        let bands = crate::band::bands(self.z, self.eps);
        (0..self.n)
            .map(|i| {
                if i < self.high {
                    // Clearly above the whole neighbourhood, with some jitter.
                    bands
                        .clearly_above
                        .saturating_add(self.rng.gen_range(0..=bands.clearly_above / 10))
                } else if i < self.high + self.sigma {
                    self.rng.gen_range(bands.inner_lo..=bands.inner_hi)
                } else {
                    // Clearly below, with jitter that keeps it clearly below.
                    self.rng.gen_range(1..=bands.clearly_below)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_is_at_least_the_oscillating_pack() {
        let eps = Epsilon::TENTH;
        let mut w = NoiseOscillationWorkload::new(30, 5, 10, 100_000, eps, 9);
        let k = 8; // inside the oscillating pack (5 high nodes + 3rd oscillator)
        for _ in 0..100 {
            let row = w.next_step();
            let view = TopKView::new(&row, k, eps);
            // Every oscillating node is inside the neighbourhood of the k-th value.
            assert!(
                view.sigma() >= 10,
                "sigma {} smaller than oscillating pack",
                view.sigma()
            );
            // The high nodes are clearly larger.
            for i in 0..5 {
                assert!(view.clearly_larger(NodeId(i)));
            }
            // The low nodes are clearly smaller.
            for i in 15..30 {
                assert!(
                    view.clearly_smaller(NodeId(i)),
                    "node {i} not clearly smaller"
                );
            }
        }
    }

    #[test]
    fn output_is_rarely_unique() {
        let eps = Epsilon::TENTH;
        let mut w = NoiseOscillationWorkload::new(20, 2, 10, 50_000, eps, 4);
        let k = 5;
        let unique_steps = (0..100)
            .filter(|_| {
                let row = w.next_step();
                TopKView::new(&row, k, eps).unique_output()
            })
            .count();
        assert_eq!(
            unique_steps, 0,
            "dense workload must not produce unique outputs"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let eps = Epsilon::HALF;
        let mut a = NoiseOscillationWorkload::new(10, 1, 5, 1000, eps, 2);
        let mut b = NoiseOscillationWorkload::new(10, 1, 5, 1000, eps, 2);
        assert_eq!(a.generate(20), b.generate(20));
    }

    #[test]
    fn accessors() {
        let w = NoiseOscillationWorkload::new(10, 1, 5, 1000, Epsilon::HALF, 2);
        assert_eq!(w.pivot(), 1000);
        assert_eq!(w.sigma(), 5);
        assert_eq!(w.n(), 10);
    }

    #[test]
    #[should_panic]
    fn rejects_inconsistent_sizes() {
        let _ = NoiseOscillationWorkload::new(5, 3, 3, 1000, Epsilon::HALF, 0);
    }
}
