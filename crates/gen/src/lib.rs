//! # topk-gen
//!
//! Workload and trace generators for the top-k-position monitoring experiments.
//!
//! The paper evaluates its algorithms analytically; there is no public trace. The
//! experiments in this reproduction therefore run on synthetic workloads that are
//! designed to hit exactly the regimes the paper's theorems distinguish:
//!
//! * [`RandomWalkWorkload`] — smooth per-node random walks; the bread-and-butter
//!   input where filters save most of the communication (Corollary 3.3,
//!   Theorem 4.5).
//! * [`GapWorkload`] — keeps a clear multiplicative gap between the k-th and the
//!   (k+1)-st value, so the ε-approximate output is unique and `TopKProtocol`
//!   applies (Sect. 4).
//! * [`NoiseOscillationWorkload`] — `σ` nodes oscillate inside the
//!   ε-neighbourhood of the k-th value ("lots of nodes observe values oscillating
//!   around the k-th largest value", Sect. 1); the regime `DenseProtocol`
//!   (Sect. 5) is built for.
//! * [`ZipfLoadWorkload`] — the web-server load-balancer scenario from the
//!   introduction: heavy-tailed per-node loads with bursts and drift.
//! * [`LowerBoundAdversary`] — the explicit adaptive adversary from the proof of
//!   Theorem 5.1; it inspects the currently assigned filters and always knocks
//!   one output node below the filter boundary.
//! * [`RegimeSwitchWorkload`] — cycles quiet → dense → adversarial segments, so
//!   one run crosses every regime boundary the paper's theorems distinguish.
//! * [`CorrelatedBurstWorkload`] — flash crowds hitting whole contiguous node
//!   groups at once (synchronized filter violations, the worst case for
//!   per-node filters).
//! * [`ChurnFlatlineWorkload`] — nodes collapse into the ε-neighbourhood of the
//!   pivot and flat-line out of it again, so `σ(t)` breathes over time.
//! * [`MembershipWorkload`] — not a value workload but a *membership
//!   schedule*: validated per-step join/leave events (explicit or seeded
//!   churn plans) for `run_with_membership` drivers.
//!
//! Non-adaptive workloads implement [`Workload`] and can be pre-materialised into
//! a [`Trace`]; the adversary implements [`AdaptiveWorkload`] because its next
//! values depend on the filters the online algorithm just published.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub(crate) mod band;
pub mod burst;
pub mod churn;
pub mod gap;
pub mod membership;
pub mod noise;
pub mod random_walk;
pub mod regime;
pub mod trace;
pub mod zipf;

pub use adversarial::LowerBoundAdversary;
pub use burst::CorrelatedBurstWorkload;
pub use churn::ChurnFlatlineWorkload;
pub use gap::GapWorkload;
pub use membership::MembershipWorkload;
pub use noise::NoiseOscillationWorkload;
pub use random_walk::RandomWalkWorkload;
pub use regime::{Regime, RegimeSwitchWorkload};
pub use trace::Trace;
pub use zipf::ZipfLoadWorkload;

use topk_model::prelude::*;

/// A source of synthetic observations: one vector of `n` values per time step.
pub trait Workload {
    /// Number of nodes.
    fn n(&self) -> usize;

    /// Produces the observations of the next time step (`values[i]` is node `i`'s
    /// observation).
    fn next_step(&mut self) -> Vec<Value>;

    /// Materialises `steps` time steps into a [`Trace`].
    fn generate(&mut self, steps: usize) -> Trace {
        let mut rows = Vec::with_capacity(steps);
        for _ in 0..steps {
            rows.push(self.next_step());
        }
        Trace::new(rows).expect("workloads produce rectangular traces")
    }
}

/// A workload whose next observations may depend on the filters the online
/// algorithm currently has in place (an *adaptive adversary* in the sense of
/// Sect. 2.1 of the paper).
pub trait AdaptiveWorkload {
    /// Number of nodes.
    fn n(&self) -> usize;

    /// Produces the observations of the next time step, given the filters the
    /// server assigned at the end of the previous step.
    fn next_step_adaptive(&mut self, filters: &[Filter]) -> Vec<Value>;
}

/// Every oblivious workload is trivially an adaptive workload that ignores the
/// filters.
impl<W: Workload> AdaptiveWorkload for W {
    fn n(&self) -> usize {
        Workload::n(self)
    }

    fn next_step_adaptive(&mut self, _filters: &[Filter]) -> Vec<Value> {
        self.next_step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant {
        n: usize,
        value: Value,
    }

    impl Workload for Constant {
        fn n(&self) -> usize {
            self.n
        }
        fn next_step(&mut self) -> Vec<Value> {
            vec![self.value; self.n]
        }
    }

    #[test]
    fn generate_materialises_steps() {
        let mut w = Constant { n: 3, value: 7 };
        let trace = w.generate(5);
        assert_eq!(trace.steps(), 5);
        assert_eq!(trace.n(), 3);
        assert_eq!(trace.row(TimeStep(4)), &[7, 7, 7]);
    }

    #[test]
    fn oblivious_workload_is_adaptive() {
        let mut w = Constant { n: 2, value: 1 };
        let vals = AdaptiveWorkload::next_step_adaptive(&mut w, &[Filter::FULL, Filter::FULL]);
        assert_eq!(vals, vec![1, 1]);
        assert_eq!(AdaptiveWorkload::n(&w), 2);
    }
}
