//! Determinism regression: every workload generator is a pure function of its
//! seed (and parameters).
//!
//! The engines' bit-identity guarantees — and the committed benchmark numbers
//! — are only reproducible if the workloads feeding them are. Two generators
//! constructed with identical seeds must produce identical streams
//! step-for-step; two constructed with different seeds must diverge (a
//! generator that ignores its seed would silently collapse every "independent
//! trial" of the experiments into the same instance).

use topk_gen::{
    AdaptiveWorkload, ChurnFlatlineWorkload, CorrelatedBurstWorkload, GapWorkload,
    LowerBoundAdversary, NoiseOscillationWorkload, RandomWalkWorkload, RegimeSwitchWorkload, Trace,
    Workload, ZipfLoadWorkload,
};
use topk_model::prelude::*;

const STEPS: usize = 40;
const N: usize = 12;

/// Materialises `STEPS` rows from a seeded generator.
fn stream(mut w: impl Workload, steps: usize) -> Vec<Vec<Value>> {
    (0..steps).map(|_| w.next_step()).collect()
}

/// Asserts the two closures build generators that (a) agree with themselves
/// across re-construction with the same seed and (b) diverge across seeds.
fn assert_seed_determinism(name: &str, make: impl Fn(u64) -> Vec<Vec<Value>>) {
    for seed in [0u64, 7, 0xDEAD_BEEF] {
        assert_eq!(
            make(seed),
            make(seed),
            "{name}: same seed must reproduce the identical stream"
        );
    }
    assert_ne!(
        make(1),
        make(2),
        "{name}: different seeds must produce different streams"
    );
}

#[test]
fn zipf_is_seed_deterministic() {
    assert_seed_determinism("zipf", |seed| {
        stream(
            ZipfLoadWorkload::new(N, 1.1, 100_000, 50, 0.01, seed),
            STEPS,
        )
    });
}

#[test]
fn noise_is_seed_deterministic() {
    assert_seed_determinism("noise", |seed| {
        stream(
            NoiseOscillationWorkload::new(N, 2, 6, 100_000, Epsilon::TENTH, seed),
            STEPS,
        )
    });
}

#[test]
fn random_walk_is_seed_deterministic() {
    assert_seed_determinism("random_walk", |seed| {
        stream(RandomWalkWorkload::new(N, 1_000_000, 500, 0.7, seed), STEPS)
    });
}

#[test]
fn gap_is_seed_deterministic() {
    assert_seed_determinism("gap", |seed| {
        stream(GapWorkload::new(N, 3, 1 << 20, 16, 40, 5, seed), STEPS)
    });
}

#[test]
fn regime_switch_is_seed_deterministic() {
    assert_seed_determinism("regime-switch", |seed| {
        stream(
            RegimeSwitchWorkload::new(N, 2, 5, 100_000, Epsilon::TENTH, 8, seed),
            STEPS,
        )
    });
}

#[test]
fn correlated_burst_is_seed_deterministic() {
    assert_seed_determinism("correlated-burst", |seed| {
        stream(
            CorrelatedBurstWorkload::new(N, 10_000, 6, 4, 0.3, seed),
            STEPS,
        )
    });
}

#[test]
fn churn_is_seed_deterministic() {
    assert_seed_determinism("churn", |seed| {
        stream(
            ChurnFlatlineWorkload::new(N, 2, 50_000, Epsilon::TENTH, 0.2, seed),
            STEPS,
        )
    });
}

#[test]
fn adversarial_is_deterministic_and_parameter_sensitive() {
    // The lower-bound adversary takes no seed: it is a deterministic function
    // of its parameters and the filter sequence it observes. Identical
    // constructions fed identical filter histories must agree exactly; a
    // different σ must change the stream.
    let eps = Epsilon::new(1, 4).unwrap();
    let run = |sigma: usize| -> Vec<Vec<Value>> {
        let mut adv = LowerBoundAdversary::new(N, 2, sigma, 1 << 20, eps);
        let mut filters = vec![Filter::FULL; N];
        (0..STEPS)
            .map(|t| {
                let row = adv.next_step_adaptive(&filters);
                // Feed back a deterministic filter history so the adaptive
                // stream is a pure function of the parameters.
                let hi = row[t % N].saturating_mul(2);
                filters[t % N] = Filter::at_most(hi);
                row
            })
            .collect()
    };
    assert_eq!(run(6), run(6), "adversary must be deterministic");
    assert_ne!(run(6), run(4), "σ must influence the adversary's stream");
}

#[test]
fn trace_replay_is_deterministic() {
    // Traces replay recorded rows; determinism here means the constructors
    // (`new`, `from_fn`) preserve rows exactly and `row()` replays them
    // byte-for-byte, including through a generate() round trip.
    let rows: Vec<Vec<Value>> = (0..STEPS as u64)
        .map(|t| (0..N as u64).map(|i| t * 31 + i * 7).collect())
        .collect();
    let a = Trace::new(rows.clone()).unwrap();
    let b = Trace::from_fn(STEPS, N, |t, i| rows[t][i]);
    for (t, expected) in rows.iter().enumerate() {
        assert_eq!(a.row(TimeStep(t as u64)), &expected[..]);
        assert_eq!(a.row(TimeStep(t as u64)), b.row(TimeStep(t as u64)));
    }
    let replayed = RandomWalkWorkload::new(N, 1 << 20, 100, 0.5, 99).generate(STEPS);
    let replayed_again = RandomWalkWorkload::new(N, 1 << 20, 100, 0.5, 99).generate(STEPS);
    for t in 0..STEPS {
        assert_eq!(
            replayed.row(TimeStep(t as u64)),
            replayed_again.row(TimeStep(t as u64)),
            "generate() must preserve the generator's determinism"
        );
    }
}
