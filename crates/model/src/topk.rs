//! Semantics of the (ε-approximate) top-k-position set.
//!
//! [`TopKView`] is a snapshot of all `n` values at one time step, annotated with
//! the quantities the paper defines in Sect. 2:
//!
//! * `π(k, t)` — the node holding the k-th largest value (ties broken by node id),
//! * `E(t) = (v_{π(k,t)}/(1−ε), ∞]` — the *clearly larger* range,
//! * `A(t) = [(1−ε)v_{π(k,t)}, v_{π(k,t)}/(1−ε)]` — the ε-neighbourhood,
//! * `K(t)` — the nodes inside `A(t)`, `σ(t) = |K(t)|`,
//! * the validity predicate for candidate output sets `F(t)`.

use crate::epsilon::Epsilon;
use crate::types::{value_order, NodeId, Value};
use serde::{Deserialize, Serialize};

/// Result of validating a candidate output set against a [`TopKView`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutputValidity {
    /// The candidate satisfies both ε-top-k properties.
    Valid,
    /// The candidate has the wrong cardinality.
    WrongSize {
        /// Number of nodes in the candidate.
        got: usize,
        /// Required number `k`.
        want: usize,
    },
    /// A node whose value is clearly larger than the k-th largest is missing.
    MissingClearlyLarger {
        /// The missing node.
        node: NodeId,
        /// Its value.
        value: Value,
    },
    /// A node whose value is clearly smaller than the k-th largest is included.
    ContainsClearlySmaller {
        /// The offending node.
        node: NodeId,
        /// Its value.
        value: Value,
    },
    /// A node identifier outside `0..n` appears in the candidate.
    UnknownNode(NodeId),
    /// The same node appears twice in the candidate.
    DuplicateNode(NodeId),
}

impl OutputValidity {
    /// `true` iff the candidate was accepted.
    pub fn is_valid(&self) -> bool {
        matches!(self, OutputValidity::Valid)
    }
}

/// Snapshot of one time step's values with top-k bookkeeping.
#[derive(Debug, Clone)]
pub struct TopKView {
    values: Vec<Value>,
    /// Node indices sorted by decreasing value (ties: smaller id first).
    order: Vec<NodeId>,
    k: usize,
    eps: Epsilon,
}

impl TopKView {
    /// Builds a view of `values` (index = node id) for parameters `k` and `ε`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > values.len()`; use
    /// [`crate::ModelError::InvalidK`]-returning wrappers upstream if the
    /// parameters are user-controlled.
    pub fn new(values: &[Value], k: usize, eps: Epsilon) -> TopKView {
        assert!(
            k >= 1 && k <= values.len(),
            "k = {k} must be in 1..={}",
            values.len()
        );
        let mut order: Vec<NodeId> = NodeId::all(values.len()).collect();
        order.sort_by(|&a, &b| value_order((values[b.index()], b), (values[a.index()], a)));
        TopKView {
            values: values.to_vec(),
            order,
            k,
            eps,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// The monitored `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The approximation error `ε`.
    pub fn eps(&self) -> Epsilon {
        self.eps
    }

    /// The value observed by `node`.
    pub fn value(&self, node: NodeId) -> Value {
        self.values[node.index()]
    }

    /// `π(r, t)` — the node holding the r-th largest value (`r` is 1-based).
    ///
    /// # Panics
    ///
    /// Panics if `r == 0` or `r > n`.
    pub fn pi(&self, r: usize) -> NodeId {
        assert!(r >= 1 && r <= self.order.len());
        self.order[r - 1]
    }

    /// The k-th largest value `v_{π(k,t)}`.
    pub fn kth_value(&self) -> Value {
        self.value(self.pi(self.k))
    }

    /// The (k+1)-st largest value, or `None` if `k == n`.
    pub fn kplus1_value(&self) -> Option<Value> {
        if self.k < self.n() {
            Some(self.value(self.pi(self.k + 1)))
        } else {
            None
        }
    }

    /// The exact top-k set `{π(1,t), …, π(k,t)}` (ties broken by node id).
    pub fn exact_top_k(&self) -> Vec<NodeId> {
        self.order[..self.k].to_vec()
    }

    /// Nodes ordered by decreasing value.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Whether `node`'s value is clearly larger than the k-th largest
    /// (`v ∈ E(t)`).
    pub fn clearly_larger(&self, node: NodeId) -> bool {
        self.eps.clearly_larger(self.value(node), self.kth_value())
    }

    /// Whether `node`'s value is clearly smaller than the k-th largest.
    pub fn clearly_smaller(&self, node: NodeId) -> bool {
        self.eps.clearly_smaller(self.value(node), self.kth_value())
    }

    /// `K(t)` — the nodes inside the ε-neighbourhood `A(t)` of the k-th largest value.
    pub fn neighbourhood(&self) -> Vec<NodeId> {
        NodeId::all(self.n())
            .filter(|&i| self.eps.in_neighbourhood(self.value(i), self.kth_value()))
            .collect()
    }

    /// `σ(t) = |K(t)|`.
    pub fn sigma(&self) -> usize {
        self.neighbourhood().len()
    }

    /// `F_E(t)` — the nodes whose values are clearly larger than the k-th largest.
    pub fn clearly_larger_set(&self) -> Vec<NodeId> {
        NodeId::all(self.n())
            .filter(|&i| self.clearly_larger(i))
            .collect()
    }

    /// Whether the output is forced to be unique, i.e. the exact top-k set is the
    /// only valid output. This holds when the (k+1)-st value is clearly smaller
    /// than the k-th (or there is no (k+1)-st node), cf. Sect. 2 of the paper.
    pub fn unique_output(&self) -> bool {
        match self.kplus1_value() {
            None => true,
            Some(v) => self.eps.clearly_smaller(v, self.kth_value()),
        }
    }

    /// Validates a candidate output set `F(t)` against the two ε-top-k properties:
    ///
    /// 1. every node in `E(t)` (clearly larger) belongs to the candidate, and
    /// 2. no node whose value is clearly smaller than `v_{π(k,t)}` belongs to it,
    ///
    /// plus `|F(t)| = k` and basic well-formedness.
    pub fn validate_output(&self, candidate: &[NodeId]) -> OutputValidity {
        // Well-formedness first.
        let mut seen = vec![false; self.n()];
        for &id in candidate {
            if id.index() >= self.n() {
                return OutputValidity::UnknownNode(id);
            }
            if seen[id.index()] {
                return OutputValidity::DuplicateNode(id);
            }
            seen[id.index()] = true;
        }
        if candidate.len() != self.k {
            return OutputValidity::WrongSize {
                got: candidate.len(),
                want: self.k,
            };
        }
        for node in NodeId::all(self.n()) {
            if self.clearly_larger(node) && !seen[node.index()] {
                return OutputValidity::MissingClearlyLarger {
                    node,
                    value: self.value(node),
                };
            }
        }
        for &node in candidate {
            if self.clearly_smaller(node) {
                return OutputValidity::ContainsClearlySmaller {
                    node,
                    value: self.value(node),
                };
            }
        }
        OutputValidity::Valid
    }

    /// Validates a candidate against the *exact* top-k requirement (set equality
    /// with [`TopKView::exact_top_k`], ties broken by node id).
    pub fn validate_exact(&self, candidate: &[NodeId]) -> bool {
        if candidate.len() != self.k {
            return false;
        }
        let mut a: Vec<usize> = candidate.iter().map(|id| id.index()).collect();
        let mut b: Vec<usize> = self.exact_top_k().iter().map(|id| id.index()).collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn view(values: &[Value], k: usize, eps: Epsilon) -> TopKView {
        TopKView::new(values, k, eps)
    }

    #[test]
    fn ordering_and_pi() {
        let v = view(&[10, 50, 30, 50, 20], 2, Epsilon::HALF);
        // Values sorted: 50(id1), 50(id3), 30(id2), 20(id4), 10(id0); ties by smaller id first.
        assert_eq!(v.pi(1), NodeId(1));
        assert_eq!(v.pi(2), NodeId(3));
        assert_eq!(v.pi(3), NodeId(2));
        assert_eq!(v.kth_value(), 50);
        assert_eq!(v.kplus1_value(), Some(30));
        assert_eq!(v.exact_top_k(), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn kplus1_absent_when_k_equals_n() {
        let v = view(&[5, 9], 2, Epsilon::HALF);
        assert_eq!(v.kplus1_value(), None);
        assert!(v.unique_output());
    }

    #[test]
    fn neighbourhood_and_sigma() {
        // k = 1, ε = 1/2: k-th largest is 100, neighbourhood [50, 200].
        let v = view(&[100, 60, 49, 201, 200], 1, Epsilon::HALF);
        // Note: k-th largest is actually 201 here. Sorted: 201, 200, 100, 60, 49; k=1 → vk=201.
        // The ε-neighbourhood is [100.5, 402], so 100 is (just) clearly smaller.
        assert_eq!(v.kth_value(), 201);
        let nb = v.neighbourhood();
        assert!(nb.contains(&NodeId(3)));
        assert!(nb.contains(&NodeId(4)));
        assert!(!nb.contains(&NodeId(0)));
        assert!(!nb.contains(&NodeId(1)));
        assert_eq!(v.sigma(), 2);
    }

    #[test]
    fn unique_output_detection() {
        // k = 1, ε = 1/2: values 100 and 49 → 49 < 50 = (1-ε)·100, unique.
        assert!(view(&[100, 49], 1, Epsilon::HALF).unique_output());
        // 50 is not clearly smaller → not unique.
        assert!(!view(&[100, 50], 1, Epsilon::HALF).unique_output());
    }

    #[test]
    fn validate_output_accepts_exact_top_k() {
        let v = view(&[10, 50, 30, 45, 20], 2, Epsilon::TENTH);
        let validity = v.validate_output(&v.exact_top_k());
        assert!(validity.is_valid(), "{validity:?}");
    }

    #[test]
    fn validate_output_accepts_swap_inside_neighbourhood() {
        // k = 1, ε = 1/2: values 100 and 95 are within each other's neighbourhood,
        // so either node is a valid "top-1".
        let v = view(&[100, 95], 1, Epsilon::HALF);
        assert!(v.validate_output(&[NodeId(0)]).is_valid());
        assert!(v.validate_output(&[NodeId(1)]).is_valid());
    }

    #[test]
    fn validate_output_rejects_bad_candidates() {
        let v = view(&[100, 95, 10, 300], 2, Epsilon::TENTH);
        // k-th largest value = 100 (sorted: 300, 100, 95, 10). Node 3 is clearly larger.
        assert_eq!(
            v.validate_output(&[NodeId(0), NodeId(1)]),
            OutputValidity::MissingClearlyLarger {
                node: NodeId(3),
                value: 300
            }
        );
        assert_eq!(
            v.validate_output(&[NodeId(3), NodeId(2)]),
            OutputValidity::ContainsClearlySmaller {
                node: NodeId(2),
                value: 10
            }
        );
        assert_eq!(
            v.validate_output(&[NodeId(3)]),
            OutputValidity::WrongSize { got: 1, want: 2 }
        );
        assert_eq!(
            v.validate_output(&[NodeId(3), NodeId(9)]),
            OutputValidity::UnknownNode(NodeId(9))
        );
        assert_eq!(
            v.validate_output(&[NodeId(3), NodeId(3)]),
            OutputValidity::DuplicateNode(NodeId(3))
        );
    }

    #[test]
    fn validate_exact_matches_set_equality() {
        let v = view(&[10, 50, 30, 45, 20], 2, Epsilon::TENTH);
        assert!(v.validate_exact(&[NodeId(3), NodeId(1)]));
        assert!(v.validate_exact(&[NodeId(1), NodeId(3)]));
        assert!(!v.validate_exact(&[NodeId(1), NodeId(2)]));
        assert!(!v.validate_exact(&[NodeId(1)]));
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let _ = view(&[1, 2, 3], 0, Epsilon::HALF);
    }

    proptest! {
        /// The exact top-k set is always a valid ε-approximate output.
        #[test]
        fn exact_top_k_is_always_valid(
            values in proptest::collection::vec(0u64..10_000, 1..40),
            k_seed in 0usize..40,
            j in 1u32..10,
        ) {
            let k = 1 + k_seed % values.len();
            let v = TopKView::new(&values, k, Epsilon::pow2_inverse(j));
            prop_assert!(v.validate_output(&v.exact_top_k()).is_valid());
            prop_assert!(v.validate_exact(&v.exact_top_k()));
        }

        /// Any k nodes drawn from the neighbourhood ∪ clearly-larger set that
        /// include all clearly-larger nodes form a valid output.
        #[test]
        fn neighbourhood_completions_are_valid(
            values in proptest::collection::vec(0u64..10_000, 2..40),
            k_seed in 0usize..40,
        ) {
            let k = 1 + k_seed % values.len();
            let v = TopKView::new(&values, k, Epsilon::HALF);
            let mut candidate = v.clearly_larger_set();
            // Fill up with neighbourhood nodes in order of decreasing value.
            for &node in v.order() {
                if candidate.len() == k { break; }
                if !candidate.contains(&node) && !v.clearly_smaller(node) {
                    candidate.push(node);
                }
            }
            prop_assert_eq!(candidate.len(), k);
            prop_assert!(v.validate_output(&candidate).is_valid());
        }

        /// σ(t) ≥ 1 always (the k-th node itself is in its own neighbourhood) and
        /// σ(t) ≤ n.
        #[test]
        fn sigma_bounds(
            values in proptest::collection::vec(0u64..1_000, 1..30),
            k_seed in 0usize..30,
        ) {
            let k = 1 + k_seed % values.len();
            let v = TopKView::new(&values, k, Epsilon::TENTH);
            prop_assert!(v.sigma() >= 1);
            prop_assert!(v.sigma() <= values.len());
        }

        /// The order returned by `order()` is sorted by decreasing value.
        #[test]
        fn order_is_sorted(values in proptest::collection::vec(0u64..1_000, 1..30)) {
            let v = TopKView::new(&values, 1, Epsilon::HALF);
            for w in v.order().windows(2) {
                prop_assert!(v.value(w[0]) >= v.value(w[1]));
            }
        }
    }
}
