//! Dynamic population membership: join/leave events and the live-slot map.
//!
//! The paper fixes the population of `n` nodes for the whole run. This module
//! relaxes that: a slot `i ∈ 0..n` can *leave* the population (its stream ends)
//! and later be *joined* by a fresh node reusing the slot. The server-side view
//! of who is currently live — and how many times each slot has been recycled —
//! is a [`Population`].
//!
//! ## Semantics (normative, see `docs/FAULTS.md`)
//!
//! * **Leave** — the slot's stream collapses to the constant `0` and the slot
//!   stops receiving workload observations. The slot stays *protocol-reachable*
//!   (it participates in existence rounds and answers probes with `0`), which
//!   is what lets every engine keep its RNG streams bit-identical. If the
//!   leaver held a top-k position, the value drop to `0` trips its lower filter
//!   bound and the ordinary violation machinery re-resolves the output — no
//!   protocol changes are needed.
//! * **Join** — the slot is resurrected with a *fresh identity*: its
//!   generation counter increments and its node-local RNG is reseeded from
//!   `(master seed, id, generation)`, so a joiner shares no randomness with any
//!   previous occupant of the slot. The joiner starts from blank monitoring
//!   state and is immediately brought up to date by the server (current group +
//!   filter), charged under the `Recovery` cost label.
//!
//! Generation `0` is the original population, so a run without membership
//! events is bit-for-bit the same as before this module existed.

use crate::types::{NodeId, Value};
use serde::{Deserialize, Serialize};

/// A single change to the monitored population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MembershipEvent {
    /// A fresh node joins, reusing slot `NodeId` (which must currently be
    /// dead). Its generation counter increments and its RNG is reseeded.
    Join(NodeId),
    /// The node in slot `NodeId` (which must currently be live) leaves the
    /// population for good; its stream collapses to the constant `0`.
    Leave(NodeId),
}

impl MembershipEvent {
    /// The slot this event concerns.
    #[inline]
    pub fn node(&self) -> NodeId {
        match self {
            MembershipEvent::Join(id) | MembershipEvent::Leave(id) => *id,
        }
    }
}

/// Live/dead state and generation counters for every slot of the population.
///
/// Every engine (and the server-side mirror of the remote engine) holds its own
/// copy and applies the same [`MembershipEvent`] sequence, so all copies agree
/// bit-for-bit — exactly like the node state itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Population {
    /// `live[i]` — whether slot `i` currently holds a live node.
    live: Vec<bool>,
    /// `generation[i]` — how many times slot `i` has been joined. Generation 0
    /// is the original node, so fresh populations reseed nothing.
    generation: Vec<u32>,
    /// Number of `true` entries in `live`, kept incrementally.
    live_count: usize,
}

impl Population {
    /// A fresh population of `n` live nodes, all at generation 0.
    pub fn new(n: usize) -> Population {
        Population {
            live: vec![true; n],
            generation: vec![0; n],
            live_count: n,
        }
    }

    /// Total number of slots (live or dead).
    #[inline]
    pub fn n(&self) -> usize {
        self.live.len()
    }

    /// Number of currently live nodes.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Whether slot `id` currently holds a live node.
    #[inline]
    pub fn is_live(&self, id: NodeId) -> bool {
        self.live[id.index()]
    }

    /// The generation of the node currently (or last) occupying slot `id`.
    #[inline]
    pub fn generation(&self, id: NodeId) -> u32 {
        self.generation[id.index()]
    }

    /// Identifiers of all currently live slots, in id order.
    pub fn live_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, live)| **live)
            .map(|(i, _)| NodeId(i))
    }

    /// Applies one membership event and returns the slot's generation *after*
    /// the event (unchanged for a leave, incremented for a join).
    ///
    /// # Panics
    ///
    /// Panics if a live slot is joined or a dead slot leaves — membership
    /// schedules must be well-formed, and every engine validates identically so
    /// a malformed schedule fails the same way everywhere.
    pub fn apply(&mut self, event: MembershipEvent) -> u32 {
        let i = event.node().index();
        assert!(
            i < self.live.len(),
            "membership event for slot {i} out of range"
        );
        match event {
            MembershipEvent::Join(_) => {
                assert!(!self.live[i], "join of slot {i} which is already live");
                self.live[i] = true;
                self.live_count += 1;
                self.generation[i] = self.generation[i]
                    .checked_add(1)
                    .expect("generation counter overflow");
            }
            MembershipEvent::Leave(_) => {
                assert!(self.live[i], "leave of slot {i} which is already dead");
                self.live[i] = false;
                self.live_count -= 1;
            }
        }
        self.generation[i]
    }

    /// Masks an observation row in place: dead slots observe the constant `0`
    /// regardless of what the workload produced for them.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.n()`.
    pub fn mask_row(&self, row: &mut [Value]) {
        assert_eq!(row.len(), self.live.len(), "row length != population size");
        for (v, live) in row.iter_mut().zip(&self.live) {
            if !live {
                *v = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_population_is_all_live_generation_zero() {
        let p = Population::new(4);
        assert_eq!(p.n(), 4);
        assert_eq!(p.live_count(), 4);
        for id in NodeId::all(4) {
            assert!(p.is_live(id));
            assert_eq!(p.generation(id), 0);
        }
        assert_eq!(p.live_ids().count(), 4);
    }

    #[test]
    fn leave_then_join_bumps_generation() {
        let mut p = Population::new(3);
        assert_eq!(p.apply(MembershipEvent::Leave(NodeId(1))), 0);
        assert!(!p.is_live(NodeId(1)));
        assert_eq!(p.live_count(), 2);
        assert_eq!(p.live_ids().collect::<Vec<_>>(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(p.apply(MembershipEvent::Join(NodeId(1))), 1);
        assert!(p.is_live(NodeId(1)));
        assert_eq!(p.generation(NodeId(1)), 1);
        assert_eq!(p.live_count(), 3);
    }

    #[test]
    fn mask_row_zeroes_dead_slots_only() {
        let mut p = Population::new(3);
        p.apply(MembershipEvent::Leave(NodeId(2)));
        let mut row = vec![10, 20, 30];
        p.mask_row(&mut row);
        assert_eq!(row, vec![10, 20, 0]);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn double_join_panics() {
        let mut p = Population::new(2);
        p.apply(MembershipEvent::Join(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "already dead")]
    fn double_leave_panics() {
        let mut p = Population::new(2);
        p.apply(MembershipEvent::Leave(NodeId(0)));
        p.apply(MembershipEvent::Leave(NodeId(0)));
    }

    #[test]
    fn event_node_accessor() {
        assert_eq!(MembershipEvent::Join(NodeId(3)).node(), NodeId(3));
        assert_eq!(MembershipEvent::Leave(NodeId(5)).node(), NodeId(5));
    }
}
