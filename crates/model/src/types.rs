//! Fundamental scalar types of the monitoring model.
//!
//! Values observed by nodes are natural numbers (`v_i^t ∈ ℕ` in the paper); we
//! represent them as [`u64`]. `Δ` denotes the largest value ever observed and is
//! only used in the *analysis*, never by the algorithms themselves — the
//! protocols work without knowing `Δ` in advance.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A value observed by a node at some time step.
///
/// The paper assumes `v ∈ {0, 1, …, Δ}`. Using `u64` supports `Δ` up to `2^63`
/// (one bit of head-room is kept so that midpoint computations `⌊(ℓ+u)/2⌋` never
/// overflow).
pub type Value = u64;

/// Sentinel used when a conceptually infinite upper bound has to be expressed as
/// a concrete [`Value`] (for example when serialising filters).
///
/// Filters represent infinity structurally (see [`crate::filter::Filter`]); this
/// constant only exists for human-readable exports.
pub const INFINITY_VALUE: Value = Value::MAX;

/// Identifier of a distributed node.
///
/// Nodes are numbered `0..n`. The paper numbers them `1..=n`; the shift is purely
/// cosmetic. Identifiers also serve as the deterministic tie-breaker that makes
/// all observed values distinct for the *exact* problem (Sect. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Enumerates the identifiers of `n` nodes.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> + Clone {
        (0..n).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// A discrete observation time step.
///
/// Time step `t` denotes the state *after* all nodes observed their `t`-th value
/// and *after* the communication protocol between steps `t` and `t+1` finished.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeStep(pub u64);

impl TimeStep {
    /// The first time step.
    pub const ZERO: TimeStep = TimeStep(0);

    /// The next time step.
    #[inline]
    pub fn next(self) -> TimeStep {
        TimeStep(self.0 + 1)
    }

    /// Raw counter value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl From<u64> for TimeStep {
    fn from(t: u64) -> Self {
        TimeStep(t)
    }
}

/// Breaks ties between equal values using node identifiers, as the paper
/// prescribes for the exact problem ("using the nodes' identifiers to break ties
/// in case the same value is observed by several nodes").
///
/// Returns the total order on `(value, node)` pairs: larger value wins, on equal
/// values the *smaller* identifier is considered larger. The choice of direction
/// is arbitrary but must be used consistently, which all crates in this workspace
/// do by calling this single function.
#[inline]
pub fn value_order(a: (Value, NodeId), b: (Value, NodeId)) -> std::cmp::Ordering {
    a.0.cmp(&b.0).then_with(|| b.1.cmp(&a.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn node_id_roundtrip_and_display() {
        let id = NodeId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "node#7");
        let all: Vec<_> = NodeId::all(3).collect();
        assert_eq!(all, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn time_step_advances() {
        let t = TimeStep::ZERO;
        assert_eq!(t.next(), TimeStep(1));
        assert_eq!(t.next().next().raw(), 2);
        assert_eq!(format!("{}", TimeStep(5)), "t=5");
        assert_eq!(TimeStep::from(9u64), TimeStep(9));
    }

    #[test]
    fn value_order_breaks_ties_by_id() {
        // Larger value wins regardless of id.
        assert_eq!(
            value_order((10, NodeId(5)), (9, NodeId(0))),
            Ordering::Greater
        );
        // Equal values: smaller id is "larger".
        assert_eq!(
            value_order((10, NodeId(1)), (10, NodeId(2))),
            Ordering::Greater
        );
        assert_eq!(
            value_order((10, NodeId(2)), (10, NodeId(1))),
            Ordering::Less
        );
        assert_eq!(
            value_order((10, NodeId(2)), (10, NodeId(2))),
            Ordering::Equal
        );
    }

    #[test]
    fn value_order_is_total_and_antisymmetric() {
        let samples = [
            (0u64, NodeId(0)),
            (0, NodeId(1)),
            (1, NodeId(0)),
            (1, NodeId(1)),
            (u64::MAX, NodeId(3)),
        ];
        for &a in &samples {
            for &b in &samples {
                let ab = value_order(a, b);
                let ba = value_order(b, a);
                assert_eq!(ab, ba.reverse());
                if a == b {
                    assert_eq!(ab, Ordering::Equal);
                } else {
                    assert_ne!(ab, Ordering::Equal, "{a:?} vs {b:?} must not tie");
                }
            }
        }
    }
}
