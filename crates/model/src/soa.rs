//! Struct-of-arrays node-state layout.
//!
//! The baseline simulation engine stores one `SimNode` struct per node — an
//! array-of-structs layout that is convenient but cache-hostile: a silent time
//! step touches every node's value, filter, group, RNG and violation flag even
//! though it only needs the value/filter columns. [`NodeStateSoA`] stores each
//! logical field in its own contiguous array so that the hot paths (value
//! updates, violation checks, threshold scans) stream over exactly the columns
//! they need.
//!
//! The type lives in `topk-model` because it is pure data layout — the single
//! source of truth for "what state a node carries" that engines in `topk-net`
//! build indexes on top of. It has no randomness and no protocol logic; the
//! violation semantics are delegated to [`Filter::check_parts`] — the same
//! single definition behind [`Filter::check`], so the flags are identical to
//! what a `SimNode` computes by construction.

use crate::filter::{Filter, Violation};
use crate::rule::NodeGroup;
use crate::types::{NodeId, Value};

/// Per-node simulation state in struct-of-arrays layout.
///
/// Columns, all of length `n`:
///
/// * `values` — the value each node observed most recently,
/// * `filter_lo` / `filter_hi` — the filter interval (the upper bound is
///   `None` for `∞`, mirroring [`Filter`]'s structural infinity),
/// * `groups` — the group the server last assigned,
/// * `pending` — the violation the node is waiting to report, if any.
///
/// Invariant: `pending[i]` always equals `filter(i).check(value(i))`; every
/// mutator that touches a node's value or filter re-establishes it and returns
/// the new flag so callers can maintain derived indexes incrementally.
///
/// Equality compares the *logical* node state (values, filters, groups,
/// pending flags); the derived zone-map caches are excluded because their
/// exact contents depend on which mutation path produced the state.
#[derive(Debug, Clone)]
pub struct NodeStateSoA {
    values: Vec<Value>,
    filter_lo: Vec<Value>,
    filter_hi: Vec<Option<Value>>,
    /// Derived column: `filter_hi` with `∞` collapsed to [`Value::MAX`].
    ///
    /// `Filter::check_parts(lo, Some(Value::MAX), v)` and
    /// `Filter::check_parts(lo, None, v)` are indistinguishable (no value
    /// exceeds `Value::MAX`), so the violation check can run on this flat
    /// `u64` column — one branchless compare per node instead of `Option`
    /// unpacking — without ever diverging from the `Filter` semantics. The
    /// exact bound (including the `bounded(x, Value::MAX)` vs `at_least(x)`
    /// distinction) stays in `filter_hi`; this column is only read by
    /// [`NodeStateSoA::advance_row`].
    check_hi: Vec<Value>,
    groups: Vec<NodeGroup>,
    /// Pending violations as flat codes (see [`encode`]/[`decode`]): `u8`
    /// arithmetic lets the bulk passes accumulate "any flag changed in this
    /// chunk?" with a branch-free XOR instead of matching on an `Option` per
    /// node. The public API speaks `Option<Violation>` throughout.
    pending: Vec<u8>,
    /// Per-chunk zone map over the filter columns (one entry per [`CHUNK`]
    /// nodes): the largest lower bound in the chunk. Together with
    /// `chunk_hi_min` it gives the dense path a conservative per-chunk test —
    /// if every new value of a chunk lies in
    /// `[chunk_lo_max, chunk_hi_min] ⊆ [lo_i, hi_i] ∀i` and no flag is
    /// currently set (`chunk_pending`), the chunk cannot transition and the
    /// filter/pending columns need not be read at all. On workloads in the
    /// paper's target regime (values inside calibrated bands) this cuts the
    /// per-step traffic to the row and value columns.
    chunk_lo_max: Vec<Value>,
    /// Zone map: the smallest (∞-collapsed) upper bound in the chunk.
    chunk_hi_min: Vec<Value>,
    /// Number of non-`None` pending flags per chunk (maintained on every code
    /// transition).
    chunk_pending: Vec<u32>,
    /// Chunks whose zone-map entries are stale (a filter changed); recomputed
    /// lazily by the next bulk pass that wants the fast path.
    ///
    /// Soundness of the lazy protocol (audited): [`NodeStateSoA::set_filter`]
    /// is the *only* mutator of the filter columns and it unconditionally
    /// marks the chunk dirty *before* returning, and every zone-map reader
    /// ([`NodeStateSoA::advance_row`]'s dense pass and
    /// [`NodeStateSoA::refresh_pending_bulk`]) rebuilds a dirty chunk before
    /// consulting `chunk_lo_max`/`chunk_hi_min`. A filter that widens in the
    /// same step as a value write therefore can never leave the skip test
    /// reading stale bounds: either the rebuild ran first (fresh bounds), or
    /// the entry is still the *pre-widening* one — which is tighter, so the
    /// test is conservative and falls through to the full per-node pass.
    /// `tests/zone_map_skip.rs` proves the property under random interleaved
    /// filter/value traffic by differencing against a skip-disabled twin
    /// (see [`NodeStateSoA::set_zone_map_enabled`]).
    chunk_dirty: Vec<bool>,
    /// Whether the bulk passes may use the zone-map skip (`true` in
    /// production; the differential proptest turns it off on a twin state to
    /// prove the skip never masks a transition).
    zone_map_enabled: bool,
}

impl PartialEq for NodeStateSoA {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
            && self.filter_lo == other.filter_lo
            && self.filter_hi == other.filter_hi
            && self.groups == other.groups
            && self.pending == other.pending
    }
}

impl Eq for NodeStateSoA {}

/// Flat encoding of `Option<Violation>` for the pending column.
#[inline]
fn encode(flag: Option<Violation>) -> u8 {
    match flag {
        None => 0,
        Some(Violation::FromBelow) => 1,
        Some(Violation::FromAbove) => 2,
    }
}

/// Inverse of [`encode`].
#[inline]
fn decode(code: u8) -> Option<Violation> {
    match code {
        0 => None,
        1 => Some(Violation::FromBelow),
        _ => Some(Violation::FromAbove),
    }
}

/// The violation code of value `v` under `[lo, hi]` (`hi` with `∞` already
/// collapsed to `Value::MAX`): branch-free, and equal to
/// `encode(Filter::check_parts(lo, …, v))` — a unit test pins the agreement.
#[inline]
fn code_of(lo: Value, hi: Value, v: Value) -> u8 {
    ((v > hi) as u8) | (((v < lo) as u8) << 1)
}

/// Chunk width of the bulk passes: wide enough that the branch-free inner
/// loop vectorises, narrow enough that a dirty chunk's scalar fixup stays
/// cheap.
const CHUNK: usize = 64;

/// Violation codes for one full chunk: `codes[k] = code_of(lo[k], hi[k],
/// vals[k])`, widened to `u64` lanes.
///
/// The fixed-width `[_; CHUNK]` signature plus same-width lanes is the
/// vectorisation contract: the trip count is a compile-time constant, every
/// lane is a branch-free compare-and-or, and keeping the codes in `u64`
/// avoids the 8:1 narrowing store that defeats LLVM's loop vectoriser. The
/// codegen is pinned by inspection: with AVX2 (`-C target-cpu=x86-64-v3`)
/// the loop compiles to 32 `vpcmpgtq` (sign-bias-XOR'd unsigned compares,
/// four lanes each — 64 lanes × 2 compares, no scalar fallback, no bounds
/// checks); the portable x86-64 baseline has no packed 64-bit compare and
/// gets fully unrolled branch-free scalar code instead. Callers carve full
/// chunks out of the columns with `try_into` and handle the ragged tail with
/// [`code_of`] directly; a unit test pins `band_codes` lane-for-lane equal
/// to `code_of`.
#[inline]
fn band_codes(
    lo: &[Value; CHUNK],
    hi: &[Value; CHUNK],
    vals: &[Value; CHUNK],
    codes: &mut [u64; CHUNK],
) {
    for k in 0..CHUNK {
        codes[k] = ((vals[k] > hi[k]) as u64) | (((vals[k] < lo[k]) as u64) << 1);
    }
}

/// OR-accumulated XOR of fresh codes against the stored pending column: zero
/// iff no flag in the chunk changed. Fixed-width like [`band_codes`] (the
/// `u8` pending lanes widen with `vpmovzxbq` under AVX2); the caller only
/// runs the scalar fix-up (store + transition record) when this is non-zero,
/// which on quiet chunks keeps the pending column write-free.
#[inline]
fn chunk_delta(codes: &[u64; CHUNK], pending: &[u8; CHUNK]) -> u64 {
    let mut delta = 0;
    for k in 0..CHUNK {
        delta |= codes[k] ^ (pending[k] as u64);
    }
    delta
}

impl NodeStateSoA {
    /// Creates the state of `n` fresh nodes: value 0, the all-embracing filter
    /// `[0, ∞)`, group `Lower`, no pending violation — exactly the initial state
    /// of a `SimNode`.
    pub fn new(n: usize) -> NodeStateSoA {
        let chunks = n.div_ceil(CHUNK);
        NodeStateSoA {
            values: vec![0; n],
            filter_lo: vec![Filter::FULL.lo(); n],
            filter_hi: vec![Filter::FULL.hi(); n],
            check_hi: vec![Value::MAX; n],
            groups: vec![NodeGroup::Lower; n],
            pending: vec![0; n],
            chunk_lo_max: vec![0; chunks],
            chunk_hi_min: vec![Value::MAX; chunks],
            chunk_pending: vec![0; chunks],
            chunk_dirty: vec![false; chunks],
            zone_map_enabled: true,
        }
    }

    /// Enables or disables the zone-map skip in the bulk passes.
    ///
    /// With the skip disabled every chunk takes the full code-re-derivation
    /// pass, so the observable state trajectory must be *identical* — the
    /// zone map is purely an elision of provably-idempotent work. This knob
    /// exists so differential tests can pin that claim; production callers
    /// never touch it.
    pub fn set_zone_map_enabled(&mut self, enabled: bool) {
        self.zone_map_enabled = enabled;
    }

    /// Writes pending code `code` for node `i`, maintaining the per-chunk
    /// count of set flags. Every code mutation funnels through here.
    #[inline]
    fn store_code(&mut self, i: usize, code: u8) {
        let old = self.pending[i];
        if old == code {
            return;
        }
        let c = i / CHUNK;
        if old == 0 {
            self.chunk_pending[c] += 1;
        } else if code == 0 {
            self.chunk_pending[c] -= 1;
        }
        self.pending[i] = code;
    }

    /// Recomputes the zone-map entry of chunk `c` from the filter columns.
    fn rebuild_chunk(&mut self, c: usize) {
        let base = c * CHUNK;
        let end = (base + CHUNK).min(self.len());
        let mut lo_max = 0;
        let mut hi_min = Value::MAX;
        for i in base..end {
            lo_max = lo_max.max(self.filter_lo[i]);
            hi_min = hi_min.min(self.check_hi[i]);
        }
        self.chunk_lo_max[c] = lo_max;
        self.chunk_hi_min[c] = hi_min;
        self.chunk_dirty[c] = false;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the state holds zero nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value column as a slice (index = node id).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value node `i` observed most recently.
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        self.values[i]
    }

    /// The filter of node `i`, reassembled from the `lo`/`hi` columns.
    #[inline]
    pub fn filter(&self, i: usize) -> Filter {
        match self.filter_hi[i] {
            Some(hi) => Filter::bounded(self.filter_lo[i], hi)
                .expect("stored filters are valid by construction"),
            None => Filter::at_least(self.filter_lo[i]),
        }
    }

    /// The group of node `i`.
    #[inline]
    pub fn group(&self, i: usize) -> NodeGroup {
        self.groups[i]
    }

    /// The violation node `i` is waiting to report, if any.
    #[inline]
    pub fn pending(&self, i: usize) -> Option<Violation> {
        decode(self.pending[i])
    }

    /// Records a new observation for node `i` and returns the updated pending
    /// flag (the [`Filter::check`] of the new value against the current filter).
    #[inline]
    pub fn set_value(&mut self, i: usize, v: Value) -> Option<Violation> {
        self.values[i] = v;
        self.refresh_pending(i)
    }

    /// Replaces the filter of node `i` and returns the updated pending flag.
    #[inline]
    pub fn set_filter(&mut self, i: usize, filter: Filter) -> Option<Violation> {
        self.filter_lo[i] = filter.lo();
        self.filter_hi[i] = filter.hi();
        self.check_hi[i] = filter.hi_or_max();
        self.chunk_dirty[i / CHUNK] = true;
        self.refresh_pending(i)
    }

    /// Replaces the group of node `i`. The caller decides whether a new filter
    /// follows (groups alone never change violation status).
    #[inline]
    pub fn set_group(&mut self, i: usize, group: NodeGroup) {
        self.groups[i] = group;
    }

    /// Re-evaluates the pending-violation flag of node `i` from its current
    /// value and filter, stores it and returns it.
    #[inline]
    pub fn refresh_pending(&mut self, i: usize) -> Option<Violation> {
        let flag = Filter::check_parts(self.filter_lo[i], self.filter_hi[i], self.values[i]);
        self.store_code(i, encode(flag));
        flag
    }

    /// Resets slot `i` to the fresh-node state of [`NodeStateSoA::new`]:
    /// value 0, the all-embracing filter, group `Lower`, no pending violation.
    ///
    /// This is the state a joining node starts from after a membership
    /// [`crate::membership::MembershipEvent::Join`] — the server then brings it
    /// up to date through the ordinary assignment paths.
    pub fn reset_node(&mut self, i: usize) {
        self.values[i] = 0;
        // `set_filter` refreshes the pending flag from the new value and marks
        // the chunk's zone-map entry dirty.
        self.set_filter(i, Filter::FULL);
        self.groups[i] = NodeGroup::Lower;
    }

    /// Iterates over `(node, filter)` pairs (for bulk inspection APIs).
    pub fn filters(&self) -> impl Iterator<Item = (NodeId, Filter)> + '_ {
        (0..self.len()).map(|i| (NodeId(i), self.filter(i)))
    }

    /// Bulk observation delivery: replaces the whole value column with `row`,
    /// re-establishes the pending invariant for every node, records the indices
    /// whose pending flag *changed* into `transitions` (cleared first) and
    /// returns the number of nodes whose value changed.
    ///
    /// Semantically identical to calling [`NodeStateSoA::set_value`] per node —
    /// re-evaluating an unchanged node's pending flag is a no-op because the
    /// invariant already held — but implemented as one zipped pass over the
    /// `values`/`filter_lo`/`check_hi`/`pending` columns so the compiler can
    /// elide bounds checks and keep the comparisons branch-free. This is the
    /// per-step hot loop of the sharded engine.
    ///
    /// `expect_dense` selects between two loop bodies with identical results
    /// but opposite branch economics, because no single loop wins on every
    /// change pattern:
    ///
    /// * `true` — *dense-biased*: unconditionally store the value and
    ///   re-derive the flag (branch-free selects). Best when most nodes change
    ///   (a skip branch would be unpredictable or always taken).
    /// * `false` — *quiet-biased*: skip unchanged nodes with an early
    ///   `continue`. Best on quiet streams — the paper's target regime — where
    ///   the branch predicts never-taken and the filter/pending columns are
    ///   never touched.
    ///
    /// Callers that deliver a row per step feed the previous step's change
    /// count back into the hint (see the sharded engine); the change count is
    /// returned for exactly that purpose.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.len()` or the state holds more than
    /// `u32::MAX` nodes (transitions are recorded as `u32` indices).
    pub fn advance_row(
        &mut self,
        row: &[Value],
        transitions: &mut Vec<u32>,
        expect_dense: bool,
    ) -> usize {
        assert_eq!(row.len(), self.len(), "one observation per node required");
        assert!(
            self.len() <= u32::MAX as usize,
            "node count exceeds u32 index range"
        );
        transitions.clear();
        let mut changed = 0usize;
        if expect_dense {
            // Chunked pass. Phase 1 scans only the chunk's slice of the *row*
            // for its min/max (512 bytes — the slice stays L1-resident for
            // whatever runs next). If the zone map proves the chunk cannot
            // transition (no flag set, every new value inside the chunk-wide
            // band), phase 2 is a bare copy-and-count over row and values —
            // the filter and pending columns are never touched. Otherwise
            // phase 2 is one full pass re-deriving each code, with a
            // rarely-taken store branch (the invariant already held for
            // unchanged nodes). Either way each chunk pays one pass over the
            // cold columns, so the zone map can only help.
            let n = self.values.len();
            let mut base = 0;
            while base < n {
                let c = base / CHUNK;
                let end = (base + CHUNK).min(n);
                if self.zone_map_enabled && self.chunk_dirty[c] {
                    self.rebuild_chunk(c);
                }
                let mut mn = Value::MAX;
                let mut mx = 0;
                for &new in &row[base..end] {
                    mn = mn.min(new);
                    mx = mx.max(new);
                }
                let cannot_transition = self.zone_map_enabled
                    && self.chunk_pending[c] == 0
                    && mn >= self.chunk_lo_max[c]
                    && mx <= self.chunk_hi_min[c];
                let mut chunk_changed = 0u64;
                if cannot_transition {
                    for (v, &new) in self.values[base..end].iter_mut().zip(&row[base..end]) {
                        chunk_changed += (*v != new) as u64;
                        *v = new;
                    }
                } else if end - base == CHUNK {
                    // Full chunk: three fixed-width kernels (value copy +
                    // change count, band codes, change detection), each of
                    // which vectorises; the scalar fix-up below only runs
                    // when some flag in the chunk actually flipped.
                    let row_chunk: &[Value; CHUNK] = row[base..end].try_into().expect("full chunk");
                    {
                        let vals: &mut [Value; CHUNK] = (&mut self.values[base..end])
                            .try_into()
                            .expect("full chunk");
                        for k in 0..CHUNK {
                            chunk_changed += (vals[k] != row_chunk[k]) as u64;
                            vals[k] = row_chunk[k];
                        }
                    }
                    let mut codes = [0u64; CHUNK];
                    band_codes(
                        self.filter_lo[base..end].try_into().expect("full chunk"),
                        self.check_hi[base..end].try_into().expect("full chunk"),
                        row_chunk,
                        &mut codes,
                    );
                    let delta = chunk_delta(
                        &codes,
                        self.pending[base..end].try_into().expect("full chunk"),
                    );
                    if delta != 0 {
                        for (off, &code) in codes.iter().enumerate() {
                            let i = base + off;
                            if code as u8 != self.pending[i] {
                                self.store_code(i, code as u8);
                                transitions.push(i as u32);
                            }
                        }
                    }
                } else {
                    for (off, &new) in row[base..end].iter().enumerate() {
                        let i = base + off;
                        chunk_changed += (self.values[i] != new) as u64;
                        self.values[i] = new;
                        let code = code_of(self.filter_lo[i], self.check_hi[i], new);
                        if code != self.pending[i] {
                            self.store_code(i, code);
                            transitions.push(i as u32);
                        }
                    }
                }
                changed += chunk_changed as usize;
                base = end;
            }
        } else {
            for (i, &new) in row.iter().enumerate() {
                if self.values[i] == new {
                    continue;
                }
                changed += 1;
                self.values[i] = new;
                let code = code_of(self.filter_lo[i], self.check_hi[i], new);
                if code != self.pending[i] {
                    self.store_code(i, code);
                    transitions.push(i as u32);
                }
            }
        }
        changed
    }

    /// Value-only write that *defers* the pending-invariant update: the caller
    /// must call [`NodeStateSoA::refresh_pending_bulk`] before anything reads
    /// a pending flag. Exists for bulk sparse application, where re-checking
    /// per write would touch the filter columns once per change instead of
    /// once per node.
    #[inline]
    pub fn set_value_deferred(&mut self, i: usize, v: Value) {
        self.values[i] = v;
    }

    /// Re-establishes the pending invariant for *every* node in one zipped
    /// pass over the `values`/`filter_lo`/`check_hi`/`pending` columns,
    /// recording the indices whose flag changed into `transitions` (cleared
    /// first). Companion of [`NodeStateSoA::set_value_deferred`].
    ///
    /// # Panics
    ///
    /// Panics if the state holds more than `u32::MAX` nodes.
    pub fn refresh_pending_bulk(&mut self, transitions: &mut Vec<u32>) {
        assert!(
            self.len() <= u32::MAX as usize,
            "node count exceeds u32 index range"
        );
        transitions.clear();
        let n = self.values.len();
        let mut base = 0;
        while base < n {
            let c = base / CHUNK;
            let end = (base + CHUNK).min(n);
            if self.zone_map_enabled && self.chunk_dirty[c] {
                self.rebuild_chunk(c);
            }
            // Same zone-map fast path as the dense advance: a chunk with no
            // flag set whose values all sit inside the chunk-wide band cannot
            // have transitioned, and only the value column is read.
            if self.zone_map_enabled && self.chunk_pending[c] == 0 {
                let mut mn = Value::MAX;
                let mut mx = 0;
                for &v in &self.values[base..end] {
                    mn = mn.min(v);
                    mx = mx.max(v);
                }
                if mn >= self.chunk_lo_max[c] && mx <= self.chunk_hi_min[c] {
                    base = end;
                    continue;
                }
            }
            if end - base == CHUNK {
                // Same fixed-width kernels as the dense advance; the values
                // were already written by `set_value_deferred`, so only the
                // code re-derivation and change detection remain.
                let mut codes = [0u64; CHUNK];
                band_codes(
                    self.filter_lo[base..end].try_into().expect("full chunk"),
                    self.check_hi[base..end].try_into().expect("full chunk"),
                    self.values[base..end].try_into().expect("full chunk"),
                    &mut codes,
                );
                let delta = chunk_delta(
                    &codes,
                    self.pending[base..end].try_into().expect("full chunk"),
                );
                if delta != 0 {
                    for (off, &code) in codes.iter().enumerate() {
                        let i = base + off;
                        if code as u8 != self.pending[i] {
                            self.store_code(i, code as u8);
                            transitions.push(i as u32);
                        }
                    }
                }
            } else {
                for i in base..end {
                    let code = code_of(self.filter_lo[i], self.check_hi[i], self.values[i]);
                    if code != self.pending[i] {
                        self.store_code(i, code);
                        transitions.push(i as u32);
                    }
                }
            }
            base = end;
        }
    }

    /// Like [`NodeStateSoA::advance_row`] with `expect_dense = false`, but
    /// additionally records the indices whose *value* changed into
    /// `changed_ids` (cleared first). Engines that maintain a per-observation
    /// incremental index over the value column (see `topk-net`'s radix value
    /// index) use this to learn exactly which entries moved without a second
    /// diff pass; the state trajectory is identical to `advance_row`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.len()` or the state holds more than
    /// `u32::MAX` nodes.
    pub fn advance_row_tracked(
        &mut self,
        row: &[Value],
        transitions: &mut Vec<u32>,
        changed_ids: &mut Vec<u32>,
    ) -> usize {
        assert_eq!(row.len(), self.len(), "one observation per node required");
        assert!(
            self.len() <= u32::MAX as usize,
            "node count exceeds u32 index range"
        );
        transitions.clear();
        changed_ids.clear();
        for (i, &new) in row.iter().enumerate() {
            if self.values[i] == new {
                continue;
            }
            changed_ids.push(i as u32);
            self.values[i] = new;
            let code = code_of(self.filter_lo[i], self.check_hi[i], new);
            if code != self.pending[i] {
                self.store_code(i, code);
                transitions.push(i as u32);
            }
        }
        changed_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_matches_sim_node_defaults() {
        let s = NodeStateSoA::new(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        for i in 0..3 {
            assert_eq!(s.value(i), 0);
            assert_eq!(s.filter(i), Filter::FULL);
            assert_eq!(s.group(i), NodeGroup::Lower);
            assert_eq!(s.pending(i), None);
        }
        assert!(NodeStateSoA::new(0).is_empty());
    }

    #[test]
    fn pending_invariant_maintained_by_mutators() {
        let mut s = NodeStateSoA::new(2);
        assert_eq!(s.set_value(0, 50), None); // FULL filter: no violation
        assert_eq!(
            s.set_filter(0, Filter::bounded(10, 40).unwrap()),
            Some(Violation::FromBelow)
        );
        assert_eq!(s.pending(0), Some(Violation::FromBelow));
        assert_eq!(s.set_value(0, 5), Some(Violation::FromAbove));
        assert_eq!(s.set_value(0, 20), None);
        // The flag always equals filter.check(value).
        for v in [0, 10, 25, 40, 41] {
            assert_eq!(s.set_value(0, v), s.filter(0).check(v));
        }
    }

    #[test]
    fn reset_node_restores_fresh_state() {
        let mut s = NodeStateSoA::new(2);
        s.set_value(1, 99);
        s.set_filter(1, Filter::bounded(10, 40).unwrap());
        s.set_group(1, NodeGroup::Upper);
        assert_eq!(s.pending(1), Some(Violation::FromBelow));
        s.reset_node(1);
        assert_eq!(s.value(1), 0);
        assert_eq!(s.filter(1), Filter::FULL);
        assert_eq!(s.group(1), NodeGroup::Lower);
        assert_eq!(s.pending(1), None);
        // The untouched slot is unaffected and the whole state equals fresh.
        assert_eq!(s, NodeStateSoA::new(2));
    }

    #[test]
    fn filter_roundtrips_through_columns() {
        let mut s = NodeStateSoA::new(1);
        for f in [
            Filter::FULL,
            Filter::at_least(7),
            Filter::at_most(9),
            Filter::bounded(3, 3).unwrap(),
            Filter::bounded(0, Value::MAX).unwrap(),
        ] {
            s.set_filter(0, f);
            assert_eq!(s.filter(0), f);
        }
    }

    #[test]
    fn advance_row_matches_per_node_set_value() {
        let filters = [
            Filter::FULL,
            Filter::bounded(10, 40).unwrap(),
            Filter::at_least(25),
            Filter::at_most(30),
            Filter::bounded(0, Value::MAX).unwrap(),
        ];
        let rows: [&[Value]; 4] = [
            &[0, 50, 20, 31, 7],
            &[0, 50, 30, 31, 7], // only one change
            &[99, 9, 24, 0, Value::MAX],
            &[99, 9, 24, 0, Value::MAX], // no change at all
        ];
        // Both loop variants must be indistinguishable from per-node writes.
        for expect_dense in [false, true] {
            let mut bulk = NodeStateSoA::new(5);
            let mut scalar = NodeStateSoA::new(5);
            for (i, f) in filters.iter().enumerate() {
                bulk.set_filter(i, *f);
                scalar.set_filter(i, *f);
            }
            let mut transitions = Vec::new();
            for row in rows {
                let before: Vec<_> = (0..5).map(|i| scalar.pending(i)).collect();
                let changed_scalar = (0..5).filter(|&i| scalar.value(i) != row[i]).count();
                for (i, &v) in row.iter().enumerate() {
                    scalar.set_value(i, v);
                }
                let changed_bulk = bulk.advance_row(row, &mut transitions, expect_dense);
                assert_eq!(bulk, scalar);
                assert_eq!(changed_bulk, changed_scalar);
                let expected: Vec<u32> = (0..5u32)
                    .filter(|&i| before[i as usize] != scalar.pending(i as usize))
                    .collect();
                assert_eq!(transitions, expected);
            }
        }
    }

    #[test]
    fn code_of_agrees_with_check_parts() {
        for lo in [0u64, 5, 10] {
            for hi in [10u64, 50, Value::MAX] {
                for v in [0u64, 4, 5, 9, 10, 11, 49, 50, 51, Value::MAX] {
                    let via_filter = Filter::check_parts(lo, Some(hi), v);
                    assert_eq!(
                        decode(code_of(lo, hi, v)),
                        via_filter,
                        "lo={lo} hi={hi} v={v}"
                    );
                    assert_eq!(encode(via_filter), code_of(lo, hi, v));
                }
                // hi = MAX must behave like the unbounded filter.
                assert_eq!(
                    decode(code_of(lo, Value::MAX, Value::MAX)),
                    Filter::check_parts(lo, None, Value::MAX)
                );
            }
        }
    }

    #[test]
    fn advance_row_treats_bounded_max_like_infinity() {
        // The check_hi column collapses ∞ to Value::MAX; the violation
        // semantics must be identical, while the exact filter is preserved.
        let mut s = NodeStateSoA::new(2);
        s.set_filter(0, Filter::at_least(10));
        s.set_filter(1, Filter::bounded(10, Value::MAX).unwrap());
        let mut transitions = Vec::new();
        s.advance_row(&[Value::MAX, Value::MAX], &mut transitions, true);
        assert_eq!(s.pending(0), None);
        assert_eq!(s.pending(1), None);
        s.advance_row(&[9, 9], &mut transitions, false);
        assert_eq!(s.pending(0), Some(Violation::FromAbove));
        assert_eq!(s.pending(1), Some(Violation::FromAbove));
        assert_eq!(transitions, vec![0, 1]);
        assert_eq!(s.filter(0), Filter::at_least(10));
        assert_eq!(s.filter(1), Filter::bounded(10, Value::MAX).unwrap());
    }

    #[test]
    #[should_panic(expected = "one observation per node")]
    fn advance_row_rejects_wrong_length() {
        let mut s = NodeStateSoA::new(3);
        s.advance_row(&[1, 2], &mut Vec::new(), true);
    }

    #[test]
    fn deferred_values_plus_bulk_refresh_equals_per_node_application() {
        let mut bulk = NodeStateSoA::new(4);
        let mut scalar = NodeStateSoA::new(4);
        for s in [&mut bulk, &mut scalar] {
            s.set_filter(0, Filter::bounded(10, 40).unwrap());
            s.set_filter(1, Filter::at_least(5));
            s.set_value(2, 7);
        }
        // Node 0 transitions twice in the change list; the bulk path nets it out.
        let changes = [(0usize, 99u64), (0, 20), (1, 3), (3, 1)];
        for &(i, v) in &changes {
            bulk.set_value_deferred(i, v);
            scalar.set_value(i, v);
        }
        let mut transitions = Vec::new();
        bulk.refresh_pending_bulk(&mut transitions);
        assert_eq!(bulk, scalar);
        // Both 0 and 1 started pending (value 0 under lower bounds ≥ 5). Node
        // 0 ends in-range — one net transition despite changing flags twice in
        // the list; node 1 stays pending; node 3 stays clear (FULL filter).
        assert_eq!(transitions, vec![0]);
        assert_eq!(bulk.pending(0), None);
        assert_eq!(bulk.pending(1), Some(Violation::FromAbove));
    }

    #[test]
    fn band_codes_agrees_with_code_of_per_lane() {
        let mut seed = 0xabcdu64;
        let mut lo = [0u64; CHUNK];
        let mut hi = [0u64; CHUNK];
        let mut vals = [0u64; CHUNK];
        for k in 0..CHUNK {
            lo[k] = lcg(&mut seed) % 64;
            hi[k] = lo[k] + lcg(&mut seed) % 64;
            // Cover below / inside / above and the extremes.
            vals[k] = match k % 5 {
                0 => 0,
                1 => lo[k].saturating_sub(1),
                2 => (lo[k] + hi[k]) / 2,
                3 => hi[k] + 1,
                _ => Value::MAX,
            };
        }
        let mut codes = [0u64; CHUNK];
        band_codes(&lo, &hi, &vals, &mut codes);
        for k in 0..CHUNK {
            assert_eq!(codes[k], code_of(lo[k], hi[k], vals[k]) as u64, "lane {k}");
        }
        // chunk_delta is zero exactly when the pending column already matches.
        let pending: [u8; CHUNK] = core::array::from_fn(|k| codes[k] as u8);
        assert_eq!(chunk_delta(&codes, &pending), 0);
        let mut off_by_one = pending;
        off_by_one[17] ^= 1;
        assert_ne!(chunk_delta(&codes, &off_by_one), 0);
    }

    /// Tiny deterministic LCG so the kernel tests cover pseudo-random traffic
    /// without pulling a RNG crate into `topk-model`'s dev-deps.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 16
    }

    #[test]
    fn full_chunk_kernel_matches_per_node_set_value() {
        // Spans two full chunks plus a ragged tail so both the fixed-width
        // kernel and the scalar tail run; compared against per-node writes
        // across dense, quiet and tracked variants.
        let n = CHUNK * 2 + 7;
        let mut seed = 0x5eed_1234u64;
        let mut bulk_dense = NodeStateSoA::new(n);
        let mut bulk_quiet = NodeStateSoA::new(n);
        let mut bulk_tracked = NodeStateSoA::new(n);
        let mut scalar = NodeStateSoA::new(n);
        for i in 0..n {
            let lo = lcg(&mut seed) % 100;
            let f = match lcg(&mut seed) % 3 {
                0 => Filter::FULL,
                1 => Filter::at_least(lo),
                _ => Filter::bounded(lo, lo + lcg(&mut seed) % 50).unwrap(),
            };
            for s in [
                &mut bulk_dense,
                &mut bulk_quiet,
                &mut bulk_tracked,
                &mut scalar,
            ] {
                s.set_filter(i, f);
            }
        }
        let mut transitions = Vec::new();
        let mut tracked_transitions = Vec::new();
        let mut changed_ids = Vec::new();
        for step in 0..6 {
            let row: Vec<Value> = (0..n)
                .map(|i| {
                    if lcg(&mut seed) % 4 == 0 {
                        lcg(&mut seed) % 160
                    } else {
                        scalar.value(i) // unchanged
                    }
                })
                .collect();
            let mut expect_changed_ids = Vec::new();
            let mut expect_transitions = Vec::new();
            for (i, &v) in row.iter().enumerate() {
                if scalar.value(i) != v {
                    expect_changed_ids.push(i as u32);
                }
                let before = scalar.pending(i);
                if scalar.set_value(i, v) != before {
                    expect_transitions.push(i as u32);
                }
            }
            let cd = bulk_dense.advance_row(&row, &mut transitions, true);
            assert_eq!(bulk_dense, scalar, "dense step {step}");
            assert_eq!(cd, expect_changed_ids.len());
            assert_eq!(transitions, expect_transitions);
            let cq = bulk_quiet.advance_row(&row, &mut transitions, false);
            assert_eq!(bulk_quiet, scalar, "quiet step {step}");
            assert_eq!(cq, expect_changed_ids.len());
            assert_eq!(transitions, expect_transitions);
            let ct =
                bulk_tracked.advance_row_tracked(&row, &mut tracked_transitions, &mut changed_ids);
            assert_eq!(bulk_tracked, scalar, "tracked step {step}");
            assert_eq!(ct, expect_changed_ids.len());
            assert_eq!(changed_ids, expect_changed_ids);
            assert_eq!(tracked_transitions, expect_transitions);
        }
    }

    #[test]
    fn zone_map_disable_preserves_trajectory() {
        let n = CHUNK + 3;
        let mut on = NodeStateSoA::new(n);
        let mut off = NodeStateSoA::new(n);
        off.set_zone_map_enabled(false);
        for i in 0..n {
            let f = Filter::bounded(10, 40).unwrap();
            on.set_filter(i, f);
            off.set_filter(i, f);
        }
        let mut ta = Vec::new();
        let mut tb = Vec::new();
        let rows: Vec<Vec<Value>> = vec![
            vec![20; n],                                  // all in band: skippable
            (0..n as u64).map(|i| 10 + i % 31).collect(), // still in band
            (0..n as u64)
                .map(|i| if i == 5 { 99 } else { 20 })
                .collect(), // one violation
        ];
        for row in &rows {
            let ca = on.advance_row(row, &mut ta, true);
            let cb = off.advance_row(row, &mut tb, true);
            assert_eq!(on, off);
            assert_eq!(ca, cb);
            assert_eq!(ta, tb);
        }
        // Deferred path as well.
        for s in [&mut on, &mut off] {
            s.set_value_deferred(7, 39);
            s.set_value_deferred(5, 7);
        }
        on.refresh_pending_bulk(&mut ta);
        off.refresh_pending_bulk(&mut tb);
        assert_eq!(on, off);
        assert_eq!(ta, tb);
    }

    #[test]
    fn bulk_accessors() {
        let mut s = NodeStateSoA::new(3);
        s.set_value(1, 42);
        s.set_group(2, NodeGroup::Upper);
        assert_eq!(s.values(), &[0, 42, 0]);
        let filters: Vec<_> = s.filters().collect();
        assert_eq!(filters.len(), 3);
        assert_eq!(filters[0], (NodeId(0), Filter::FULL));
        assert_eq!(s.group(2), NodeGroup::Upper);
    }
}
