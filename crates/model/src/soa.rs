//! Struct-of-arrays node-state layout.
//!
//! The baseline simulation engine stores one `SimNode` struct per node — an
//! array-of-structs layout that is convenient but cache-hostile: a silent time
//! step touches every node's value, filter, group, RNG and violation flag even
//! though it only needs the value/filter columns. [`NodeStateSoA`] stores each
//! logical field in its own contiguous array so that the hot paths (value
//! updates, violation checks, threshold scans) stream over exactly the columns
//! they need.
//!
//! The type lives in `topk-model` because it is pure data layout — the single
//! source of truth for "what state a node carries" that engines in `topk-net`
//! build indexes on top of. It has no randomness and no protocol logic; the
//! violation semantics are delegated to [`Filter::check_parts`] — the same
//! single definition behind [`Filter::check`], so the flags are identical to
//! what a `SimNode` computes by construction.

use crate::filter::{Filter, Violation};
use crate::rule::NodeGroup;
use crate::types::{NodeId, Value};

/// Per-node simulation state in struct-of-arrays layout.
///
/// Columns, all of length `n`:
///
/// * `values` — the value each node observed most recently,
/// * `filter_lo` / `filter_hi` — the filter interval (the upper bound is
///   `None` for `∞`, mirroring [`Filter`]'s structural infinity),
/// * `groups` — the group the server last assigned,
/// * `pending` — the violation the node is waiting to report, if any.
///
/// Invariant: `pending[i]` always equals `filter(i).check(value(i))`; every
/// mutator that touches a node's value or filter re-establishes it and returns
/// the new flag so callers can maintain derived indexes incrementally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStateSoA {
    values: Vec<Value>,
    filter_lo: Vec<Value>,
    filter_hi: Vec<Option<Value>>,
    groups: Vec<NodeGroup>,
    pending: Vec<Option<Violation>>,
}

impl NodeStateSoA {
    /// Creates the state of `n` fresh nodes: value 0, the all-embracing filter
    /// `[0, ∞)`, group `Lower`, no pending violation — exactly the initial state
    /// of a `SimNode`.
    pub fn new(n: usize) -> NodeStateSoA {
        NodeStateSoA {
            values: vec![0; n],
            filter_lo: vec![Filter::FULL.lo(); n],
            filter_hi: vec![Filter::FULL.hi(); n],
            groups: vec![NodeGroup::Lower; n],
            pending: vec![None; n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the state holds zero nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value column as a slice (index = node id).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value node `i` observed most recently.
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        self.values[i]
    }

    /// The filter of node `i`, reassembled from the `lo`/`hi` columns.
    #[inline]
    pub fn filter(&self, i: usize) -> Filter {
        match self.filter_hi[i] {
            Some(hi) => Filter::bounded(self.filter_lo[i], hi)
                .expect("stored filters are valid by construction"),
            None => Filter::at_least(self.filter_lo[i]),
        }
    }

    /// The group of node `i`.
    #[inline]
    pub fn group(&self, i: usize) -> NodeGroup {
        self.groups[i]
    }

    /// The violation node `i` is waiting to report, if any.
    #[inline]
    pub fn pending(&self, i: usize) -> Option<Violation> {
        self.pending[i]
    }

    /// Records a new observation for node `i` and returns the updated pending
    /// flag (the [`Filter::check`] of the new value against the current filter).
    #[inline]
    pub fn set_value(&mut self, i: usize, v: Value) -> Option<Violation> {
        self.values[i] = v;
        self.refresh_pending(i)
    }

    /// Replaces the filter of node `i` and returns the updated pending flag.
    #[inline]
    pub fn set_filter(&mut self, i: usize, filter: Filter) -> Option<Violation> {
        self.filter_lo[i] = filter.lo();
        self.filter_hi[i] = filter.hi();
        self.refresh_pending(i)
    }

    /// Replaces the group of node `i`. The caller decides whether a new filter
    /// follows (groups alone never change violation status).
    #[inline]
    pub fn set_group(&mut self, i: usize, group: NodeGroup) {
        self.groups[i] = group;
    }

    /// Re-evaluates the pending-violation flag of node `i` from its current
    /// value and filter, stores it and returns it.
    #[inline]
    pub fn refresh_pending(&mut self, i: usize) -> Option<Violation> {
        let flag = Filter::check_parts(self.filter_lo[i], self.filter_hi[i], self.values[i]);
        self.pending[i] = flag;
        flag
    }

    /// Iterates over `(node, filter)` pairs (for bulk inspection APIs).
    pub fn filters(&self) -> impl Iterator<Item = (NodeId, Filter)> + '_ {
        (0..self.len()).map(|i| (NodeId(i), self.filter(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_matches_sim_node_defaults() {
        let s = NodeStateSoA::new(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        for i in 0..3 {
            assert_eq!(s.value(i), 0);
            assert_eq!(s.filter(i), Filter::FULL);
            assert_eq!(s.group(i), NodeGroup::Lower);
            assert_eq!(s.pending(i), None);
        }
        assert!(NodeStateSoA::new(0).is_empty());
    }

    #[test]
    fn pending_invariant_maintained_by_mutators() {
        let mut s = NodeStateSoA::new(2);
        assert_eq!(s.set_value(0, 50), None); // FULL filter: no violation
        assert_eq!(
            s.set_filter(0, Filter::bounded(10, 40).unwrap()),
            Some(Violation::FromBelow)
        );
        assert_eq!(s.pending(0), Some(Violation::FromBelow));
        assert_eq!(s.set_value(0, 5), Some(Violation::FromAbove));
        assert_eq!(s.set_value(0, 20), None);
        // The flag always equals filter.check(value).
        for v in [0, 10, 25, 40, 41] {
            assert_eq!(s.set_value(0, v), s.filter(0).check(v));
        }
    }

    #[test]
    fn filter_roundtrips_through_columns() {
        let mut s = NodeStateSoA::new(1);
        for f in [
            Filter::FULL,
            Filter::at_least(7),
            Filter::at_most(9),
            Filter::bounded(3, 3).unwrap(),
            Filter::bounded(0, Value::MAX).unwrap(),
        ] {
            s.set_filter(0, f);
            assert_eq!(s.filter(0), f);
        }
    }

    #[test]
    fn bulk_accessors() {
        let mut s = NodeStateSoA::new(3);
        s.set_value(1, 42);
        s.set_group(2, NodeGroup::Upper);
        assert_eq!(s.values(), &[0, 42, 0]);
        let filters: Vec<_> = s.filters().collect();
        assert_eq!(filters.len(), 3);
        assert_eq!(filters[0], (NodeId(0), Filter::FULL));
        assert_eq!(s.group(2), NodeGroup::Upper);
    }
}
