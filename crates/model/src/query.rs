//! Multi-query vocabulary: query identities, specifications and the
//! split-charge cost ledger.
//!
//! A deployment serves many concurrent top-k queries over one shared node
//! population. Each query is registered under a [`QueryId`] with a
//! [`QuerySpec`] describing its `k`, its `ε`, the protocol it runs and the
//! subset of nodes it monitors. The server keeps one *effective* filter per
//! node — the intersection of the bands all covering queries assigned to that
//! node (see [`crate::Filter::intersect`]) — so a node stays a single-filter
//! device no matter how many queries watch it.
//!
//! Message cost is attributed per query through a [`QueryCostLedger`]:
//! messages sent on behalf of exactly one query are charged to it in full,
//! while messages whose payload several queries consume (e.g. one violation
//! report that resolves a violation for two queries) are *split-charged* in
//! fixed-point units of [`SPLIT_SCALE`] per message. The ledger guarantees
//! that the per-query totals always sum to `SPLIT_SCALE ×` the number of
//! attributed wire messages — nothing is double-charged and nothing leaks.

use crate::epsilon::Epsilon;
use crate::types::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a registered query — its 0-based registration rank.
///
/// `QueryId`s are dense: the i-th `register` call on a query set yields
/// `QueryId(i)`. The id travels on the wire (wire v4) as a varint so that a
/// remote node's traffic can be attributed without the server re-deriving it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The id as a `usize` index (its registration rank).
    #[inline]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The set of nodes a query monitors.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeSubset {
    /// The query monitors every node of the population.
    #[default]
    All,
    /// The query monitors an explicit set of nodes (stored sorted and
    /// deduplicated by [`NodeSubset::resolve`]).
    Nodes(Vec<NodeId>),
}

impl NodeSubset {
    /// A contiguous range `[start, start + count)` of node ids.
    pub fn range(start: usize, count: usize) -> NodeSubset {
        NodeSubset::Nodes((start..start + count).map(NodeId).collect())
    }

    /// The subset as a sorted, deduplicated list of node ids, all `< n`.
    ///
    /// # Panics
    ///
    /// Panics if an explicit subset names a node `≥ n` — a query must not
    /// silently monitor fewer nodes than it asked for.
    pub fn resolve(&self, n: usize) -> Vec<NodeId> {
        match self {
            NodeSubset::All => (0..n).map(NodeId).collect(),
            NodeSubset::Nodes(nodes) => {
                let mut out = nodes.clone();
                out.sort_unstable();
                out.dedup();
                if let Some(&bad) = out.iter().find(|id| id.index() >= n) {
                    panic!("query subset names {bad} but the population has only {n} nodes");
                }
                out
            }
        }
    }

    /// Whether the subset covers the full population of `n` nodes.
    pub fn is_all(&self, n: usize) -> bool {
        match self {
            NodeSubset::All => true,
            NodeSubset::Nodes(_) => self.resolve(n).len() == n,
        }
    }
}

/// Specification of one registered query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// The monitored `k` (number of top positions).
    pub k: usize,
    /// The approximation error the query tolerates.
    pub eps: Epsilon,
    /// Name of the protocol the query runs (resolved by the bench layer's
    /// `ProtocolKind::from_name`; kept as a string here so the model crate
    /// stays protocol-agnostic).
    pub protocol: String,
    /// The nodes the query monitors.
    pub subset: NodeSubset,
}

impl QuerySpec {
    /// A full-population query with the given `k`, `ε` and protocol name.
    pub fn new(k: usize, eps: Epsilon, protocol: impl Into<String>) -> QuerySpec {
        QuerySpec {
            k,
            eps,
            protocol: protocol.into(),
            subset: NodeSubset::All,
        }
    }

    /// Restricts the query to an explicit node subset (builder style).
    pub fn with_subset(mut self, subset: NodeSubset) -> QuerySpec {
        self.subset = subset;
        self
    }
}

/// Fixed-point units one wire message is worth in the split-charge ledger.
///
/// A message consumed by `s` queries is split as `SPLIT_SCALE / s` units per
/// query, with the first `SPLIT_SCALE mod s` sharers (in registration order)
/// receiving one extra unit — so every message contributes *exactly*
/// `SPLIT_SCALE` units, and per-query totals sum to `SPLIT_SCALE ×` the wire
/// total by construction.
pub const SPLIT_SCALE: u64 = 1000;

/// Per-query attribution of wire messages, with split-charging for messages
/// shared between queries.
///
/// Usage protocol (driven by the query-set step loop):
///
/// 1. [`QueryCostLedger::charge_exclusive`] for messages that belong to one
///    query outright (filter assignments, probes, a query's own broadcasts).
/// 2. [`QueryCostLedger::open_shared`] when a shareable message is elicited
///    (e.g. a violation report served from the shared report pool); further
///    consumers are appended with [`QueryCostLedger::add_sharer`].
/// 3. [`QueryCostLedger::settle_step`] at the end of each observation step
///    splits every open shared message among its sharers and folds the units
///    into the per-query totals.
#[derive(Debug, Clone, Default)]
pub struct QueryCostLedger {
    /// Settled units per query (registration rank as index).
    units: Vec<u64>,
    /// Open shared messages of the current step: the sharer ranks of each.
    open: Vec<Vec<u32>>,
}

impl QueryCostLedger {
    /// A ledger for `queries` registered queries, all totals zero.
    pub fn new(queries: usize) -> QueryCostLedger {
        QueryCostLedger {
            units: vec![0; queries],
            open: Vec::new(),
        }
    }

    /// Number of registered queries.
    pub fn queries(&self) -> usize {
        self.units.len()
    }

    /// Charges `messages` whole wire messages exclusively to `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn charge_exclusive(&mut self, q: QueryId, messages: u64) {
        self.units[q.index()] += messages * SPLIT_SCALE;
    }

    /// Opens a shared message with `q` as its first sharer and returns the
    /// entry handle (valid until the next [`QueryCostLedger::settle_step`]).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn open_shared(&mut self, q: QueryId) -> usize {
        assert!(q.index() < self.units.len(), "unregistered {q}");
        self.open.push(vec![q.0]);
        self.open.len() - 1
    }

    /// Opens a shared message that no query has consumed yet. It contributes
    /// nothing unless a sharer is added before the step settles (matching a
    /// message whose wire charge was retracted pending a consumer).
    pub fn open_unconsumed(&mut self) -> usize {
        self.open.push(Vec::new());
        self.open.len() - 1
    }

    /// Adds `q` as a sharer of the open entry `entry` (idempotent per query).
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not an open entry of the current step or `q` is
    /// out of range.
    pub fn add_sharer(&mut self, entry: usize, q: QueryId) {
        assert!(q.index() < self.units.len(), "unregistered {q}");
        let sharers = &mut self.open[entry];
        if !sharers.contains(&q.0) {
            sharers.push(q.0);
        }
    }

    /// Whether the open entry `entry` already lists `q` as a sharer.
    pub fn is_sharer(&self, entry: usize, q: QueryId) -> bool {
        self.open[entry].contains(&q.0)
    }

    /// Splits every open shared message among its sharers and folds the units
    /// into the per-query totals. Entries with no sharer are dropped without
    /// charge (their wire charge was retracted, so the sum invariant holds).
    pub fn settle_step(&mut self) {
        for mut sharers in self.open.drain(..) {
            let s = sharers.len() as u64;
            if s == 0 {
                continue;
            }
            sharers.sort_unstable();
            let per = SPLIT_SCALE / s;
            let rem = (SPLIT_SCALE % s) as usize;
            for (rank, &q) in sharers.iter().enumerate() {
                self.units[q as usize] += per + u64::from(rank < rem);
            }
        }
    }

    /// Settled units attributed to `q` so far.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn units(&self, q: QueryId) -> u64 {
        self.units[q.index()]
    }

    /// Settled units per query, in registration order.
    pub fn per_query_units(&self) -> &[u64] {
        &self.units
    }

    /// Sum of all settled units. After every step settles, this equals
    /// `SPLIT_SCALE ×` the number of attributed wire messages.
    pub fn total_units(&self) -> u64 {
        self.units.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_id_display_and_index() {
        assert_eq!(QueryId(3).to_string(), "q3");
        assert_eq!(QueryId(3).index(), 3);
        assert!(QueryId(1) < QueryId(2));
    }

    #[test]
    fn subset_resolution() {
        assert_eq!(
            NodeSubset::All.resolve(3),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        let s = NodeSubset::Nodes(vec![NodeId(2), NodeId(0), NodeId(2)]);
        assert_eq!(s.resolve(3), vec![NodeId(0), NodeId(2)]);
        assert!(NodeSubset::All.is_all(5));
        assert!(NodeSubset::range(0, 4).is_all(4));
        assert!(!NodeSubset::range(0, 3).is_all(4));
        assert_eq!(
            NodeSubset::range(2, 2).resolve(5),
            vec![NodeId(2), NodeId(3)]
        );
    }

    #[test]
    #[should_panic(expected = "only 2 nodes")]
    fn subset_rejects_out_of_range_nodes() {
        NodeSubset::Nodes(vec![NodeId(5)]).resolve(2);
    }

    #[test]
    fn spec_builders() {
        let spec = QuerySpec::new(4, Epsilon::HALF, "topk").with_subset(NodeSubset::range(0, 2));
        assert_eq!(spec.k, 4);
        assert_eq!(spec.protocol, "topk");
        assert_eq!(spec.subset.resolve(8).len(), 2);
        assert_eq!(NodeSubset::default(), NodeSubset::All);
    }

    #[test]
    fn exclusive_charges_accumulate() {
        let mut ledger = QueryCostLedger::new(2);
        ledger.charge_exclusive(QueryId(0), 3);
        ledger.charge_exclusive(QueryId(1), 1);
        ledger.charge_exclusive(QueryId(0), 2);
        assert_eq!(ledger.units(QueryId(0)), 5 * SPLIT_SCALE);
        assert_eq!(ledger.units(QueryId(1)), SPLIT_SCALE);
        assert_eq!(ledger.total_units(), 6 * SPLIT_SCALE);
        assert_eq!(ledger.queries(), 2);
    }

    #[test]
    fn shared_messages_split_exactly() {
        let mut ledger = QueryCostLedger::new(3);
        let e = ledger.open_shared(QueryId(1));
        ledger.add_sharer(e, QueryId(0));
        ledger.add_sharer(e, QueryId(2));
        ledger.add_sharer(e, QueryId(0)); // idempotent
        assert!(ledger.is_sharer(e, QueryId(2)));
        ledger.settle_step();
        // 1000 / 3 = 333 each; the first 1000 mod 3 = 1 sharer (q0) gets +1.
        assert_eq!(ledger.units(QueryId(0)), 334);
        assert_eq!(ledger.units(QueryId(1)), 333);
        assert_eq!(ledger.units(QueryId(2)), 333);
        assert_eq!(ledger.total_units(), SPLIT_SCALE);
    }

    #[test]
    fn unconsumed_entries_cost_nothing() {
        let mut ledger = QueryCostLedger::new(2);
        ledger.open_unconsumed();
        let e = ledger.open_unconsumed();
        ledger.add_sharer(e, QueryId(1));
        ledger.settle_step();
        assert_eq!(ledger.units(QueryId(0)), 0);
        assert_eq!(ledger.units(QueryId(1)), SPLIT_SCALE);
        assert_eq!(ledger.total_units(), SPLIT_SCALE);
    }

    #[test]
    fn settle_clears_open_entries() {
        let mut ledger = QueryCostLedger::new(1);
        ledger.open_shared(QueryId(0));
        ledger.settle_step();
        ledger.settle_step(); // no double-charge
        assert_eq!(ledger.total_units(), SPLIT_SCALE);
    }
}
