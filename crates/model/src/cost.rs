//! Communication-cost accounting.
//!
//! The efficiency measure of the continuous monitoring model is the *number of
//! messages*: node → server unicasts, server → node unicasts and broadcasts each
//! cost one unit. [`CostMeter`] counts them, split by [`MessageKind`] and by the
//! protocol phase ([`ProtocolLabel`]) that caused them, and additionally tracks
//! the number of interactive rounds used between consecutive observation steps
//! (the model allows polylogarithmically many).
//!
//! The competitive-ratio experiments divide the online total by OPT's total, so
//! getting these counters right is as important as getting the protocols right.
//! Every transport primitive in `topk-net` reports to exactly one meter.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Physical class of a message; each costs one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Node → server unicast.
    Upstream,
    /// Server → single node unicast.
    DownstreamUnicast,
    /// Server → all nodes broadcast (one unit regardless of `n`).
    Broadcast,
}

impl MessageKind {
    /// All message kinds, for iteration in reports.
    pub const ALL: [MessageKind; 3] = [
        MessageKind::Upstream,
        MessageKind::DownstreamUnicast,
        MessageKind::Broadcast,
    ];
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageKind::Upstream => write!(f, "upstream"),
            MessageKind::DownstreamUnicast => write!(f, "downstream-unicast"),
            MessageKind::Broadcast => write!(f, "broadcast"),
        }
    }
}

/// The protocol (or protocol phase) on whose behalf a message was sent.
///
/// Used to produce the per-phase breakdowns of the experiment tables (e.g. "how
/// many messages did the initial top-(k+1) computation cost vs. the witnessing
/// phase").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProtocolLabel {
    /// Initialisation (e.g. probing the k+1 largest values at start-up).
    Init,
    /// The existence protocol of Sect. 3.
    Existence,
    /// The maximum-computation protocol of Lemma 2.6.
    Maximum,
    /// The exact top-k protocol of Corollary 3.3 (generic midpoint framework).
    ExactTopK,
    /// `TopKProtocol` of Sect. 4 — phase P1 (double-exponential probing, `A1`).
    TopKPhase1,
    /// `TopKProtocol` — phase P2 (logarithmic midpoint, `A2`).
    TopKPhase2,
    /// `TopKProtocol` — phase P3 (plain midpoint, `A3`).
    TopKPhase3,
    /// `TopKProtocol` — phase P4 (final ε-overlapping filters).
    TopKPhase4,
    /// `DenseProtocol` of Sect. 5.
    Dense,
    /// `SubProtocol` of Sect. 5.
    Sub,
    /// The ε/2-gap algorithm of Corollary 5.9.
    HalfEps,
    /// Fault-recovery traffic: rejoin state replay and transport-level poll
    /// retries (see `docs/FAULTS.md`). Never appears in a fault-free run.
    Recovery,
    /// Offline baseline (OPT) filter updates.
    Offline,
    /// Anything else (drivers, glue, tests).
    Other,
}

impl fmt::Display for ProtocolLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolLabel::Init => "init",
            ProtocolLabel::Existence => "existence",
            ProtocolLabel::Maximum => "maximum",
            ProtocolLabel::ExactTopK => "exact-top-k",
            ProtocolLabel::TopKPhase1 => "topk-p1",
            ProtocolLabel::TopKPhase2 => "topk-p2",
            ProtocolLabel::TopKPhase3 => "topk-p3",
            ProtocolLabel::TopKPhase4 => "topk-p4",
            ProtocolLabel::Dense => "dense",
            ProtocolLabel::Sub => "sub",
            ProtocolLabel::HalfEps => "half-eps",
            ProtocolLabel::Recovery => "recovery",
            ProtocolLabel::Offline => "offline",
            ProtocolLabel::Other => "other",
        };
        write!(f, "{s}")
    }
}

/// Immutable snapshot of the counters in a [`CostMeter`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommStats {
    /// Message counts per `(label, kind)` pair.
    pub by_label_kind: BTreeMap<(ProtocolLabel, MessageKind), u64>,
    /// Total number of interactive protocol rounds used.
    pub rounds: u64,
    /// Number of observation time steps covered by the measurement.
    pub time_steps: u64,
}

impl CommStats {
    /// Total number of messages of all kinds and labels.
    pub fn total_messages(&self) -> u64 {
        self.by_label_kind.values().sum()
    }

    /// Total number of messages of one kind.
    pub fn messages_of_kind(&self, kind: MessageKind) -> u64 {
        self.by_label_kind
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Total number of messages attributed to one protocol label.
    pub fn messages_of_label(&self, label: ProtocolLabel) -> u64 {
        self.by_label_kind
            .iter()
            .filter(|((l, _), _)| *l == label)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Merges another snapshot into this one (summing all counters).
    pub fn merge(&mut self, other: &CommStats) {
        for (k, v) in &other.by_label_kind {
            *self.by_label_kind.entry(*k).or_insert(0) += v;
        }
        self.rounds += other.rounds;
        self.time_steps += other.time_steps;
    }

    /// Average number of messages per observation time step
    /// (0 if no steps were recorded).
    pub fn messages_per_step(&self) -> f64 {
        if self.time_steps == 0 {
            0.0
        } else {
            self.total_messages() as f64 / self.time_steps as f64
        }
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} messages over {} steps ({} rounds)",
            self.total_messages(),
            self.time_steps,
            self.rounds
        )?;
        for kind in MessageKind::ALL {
            writeln!(f, "  {kind}: {}", self.messages_of_kind(kind))?;
        }
        for ((label, kind), count) in &self.by_label_kind {
            writeln!(f, "  {label}/{kind}: {count}")?;
        }
        Ok(())
    }
}

/// Mutable message/round counter used by the simulation engines.
///
/// The meter keeps a *current label* (a stack of protocol phases) so that nested
/// protocols — e.g. `DenseProtocol` calling the existence protocol to detect
/// violations — can attribute their messages precisely.
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    stats: CommStats,
    label_stack: Vec<ProtocolLabel>,
    /// Running message total, kept alongside the map so
    /// [`CostMeter::total_messages`] is O(1) — it sits on per-step paths
    /// (driver observers) that must not traverse the label map.
    total: u64,
}

impl CostMeter {
    /// Creates a fresh meter with the label `Other` active.
    pub fn new() -> CostMeter {
        CostMeter::default()
    }

    /// The label messages are currently attributed to.
    pub fn current_label(&self) -> ProtocolLabel {
        *self.label_stack.last().unwrap_or(&ProtocolLabel::Other)
    }

    /// Pushes a protocol label; subsequent messages are attributed to it until
    /// [`CostMeter::pop_label`] is called.
    pub fn push_label(&mut self, label: ProtocolLabel) {
        self.label_stack.push(label);
    }

    /// Pops the most recent protocol label.
    pub fn pop_label(&mut self) {
        self.label_stack.pop();
    }

    /// Records one message of the given kind under the current label.
    pub fn record(&mut self, kind: MessageKind) {
        let label = self.current_label();
        *self.stats.by_label_kind.entry((label, kind)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `count` messages of the given kind under the current label.
    pub fn record_many(&mut self, kind: MessageKind, count: u64) {
        if count == 0 {
            return;
        }
        let label = self.current_label();
        *self.stats.by_label_kind.entry((label, kind)).or_insert(0) += count;
        self.total += count;
    }

    /// Removes `count` messages of `kind` previously recorded under the
    /// current label.
    ///
    /// This exists for exactly one caller: the fault-injection transport.
    /// A crashed node sends nothing, but the wrapped engine has already
    /// charged the node's existence replies by the time the wrapper can strip
    /// them — so the wrapper retracts the charge for messages that, under the
    /// fault plan, were never sent at all. (Messages that *were* sent and
    /// then lost in transit stay charged; see `docs/FAULTS.md`.) Protocol
    /// code must never call this.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` messages of `kind` were recorded under
    /// the current label — retracting what was never charged is a bug.
    pub fn retract(&mut self, kind: MessageKind, count: u64) {
        if count == 0 {
            return;
        }
        let label = self.current_label();
        let entry = self
            .stats
            .by_label_kind
            .get_mut(&(label, kind))
            .unwrap_or_else(|| panic!("retract: nothing recorded under {label}/{kind}"));
        assert!(
            *entry >= count,
            "retract: only {entry} messages recorded under {label}/{kind}, cannot remove {count}"
        );
        *entry -= count;
        if *entry == 0 {
            self.stats.by_label_kind.remove(&(label, kind));
        }
        self.total -= count;
    }

    /// Records one interactive protocol round.
    pub fn record_round(&mut self) {
        self.stats.rounds += 1;
    }

    /// Records one observation time step.
    pub fn record_time_step(&mut self) {
        self.stats.time_steps += 1;
    }

    /// Returns a snapshot of the counters.
    pub fn snapshot(&self) -> CommStats {
        self.stats.clone()
    }

    /// Total messages so far (O(1): a running counter, not a map traversal).
    pub fn total_messages(&self) -> u64 {
        debug_assert_eq!(self.total, self.stats.total_messages());
        self.total
    }

    /// Resets all counters (labels stay).
    pub fn reset(&mut self) {
        self.stats = CommStats::default();
        self.total = 0;
    }
}

/// RAII guard that pops the label pushed at construction when dropped.
///
/// ```
/// use topk_model::cost::{CostMeter, LabelGuard, MessageKind, ProtocolLabel};
/// let mut meter = CostMeter::new();
/// {
///     // Scope all messages to the existence protocol.
///     meter.push_label(ProtocolLabel::Existence);
///     meter.record(MessageKind::Broadcast);
///     meter.pop_label();
/// }
/// assert_eq!(meter.snapshot().messages_of_label(ProtocolLabel::Existence), 1);
/// ```
pub struct LabelGuard;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let mut m = CostMeter::new();
        m.record(MessageKind::Upstream);
        m.record(MessageKind::Upstream);
        m.record(MessageKind::Broadcast);
        m.record_round();
        m.record_time_step();
        let s = m.snapshot();
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.messages_of_kind(MessageKind::Upstream), 2);
        assert_eq!(s.messages_of_kind(MessageKind::Broadcast), 1);
        assert_eq!(s.messages_of_kind(MessageKind::DownstreamUnicast), 0);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.time_steps, 1);
        assert_eq!(s.messages_per_step(), 3.0);
    }

    #[test]
    fn labels_attribute_messages() {
        let mut m = CostMeter::new();
        m.record(MessageKind::Upstream); // Other
        m.push_label(ProtocolLabel::Dense);
        m.record(MessageKind::Broadcast);
        m.push_label(ProtocolLabel::Existence);
        m.record(MessageKind::Upstream);
        m.pop_label();
        m.record(MessageKind::DownstreamUnicast);
        m.pop_label();
        let s = m.snapshot();
        assert_eq!(s.messages_of_label(ProtocolLabel::Other), 1);
        assert_eq!(s.messages_of_label(ProtocolLabel::Dense), 2);
        assert_eq!(s.messages_of_label(ProtocolLabel::Existence), 1);
        assert_eq!(m.current_label(), ProtocolLabel::Other);
    }

    #[test]
    fn record_many_and_reset() {
        let mut m = CostMeter::new();
        m.record_many(MessageKind::DownstreamUnicast, 5);
        m.record_many(MessageKind::DownstreamUnicast, 0);
        assert_eq!(m.total_messages(), 5);
        m.reset();
        assert_eq!(m.total_messages(), 0);
    }

    #[test]
    fn retract_removes_charges_under_the_current_label() {
        let mut m = CostMeter::new();
        m.push_label(ProtocolLabel::Existence);
        m.record_many(MessageKind::Upstream, 5);
        m.retract(MessageKind::Upstream, 2);
        assert_eq!(m.total_messages(), 3);
        m.retract(MessageKind::Upstream, 3);
        assert_eq!(m.total_messages(), 0);
        // Fully retracted entries vanish, so the snapshot equals a fresh one.
        assert_eq!(m.snapshot(), CommStats::default());
        m.retract(MessageKind::Upstream, 0); // no-op, never panics
    }

    #[test]
    #[should_panic(expected = "retract")]
    fn retract_of_uncharged_messages_panics() {
        let mut m = CostMeter::new();
        m.record(MessageKind::Broadcast);
        m.retract(MessageKind::Upstream, 1);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CommStats::default();
        let mut m = CostMeter::new();
        m.push_label(ProtocolLabel::Maximum);
        m.record(MessageKind::Upstream);
        m.record_time_step();
        a.merge(&m.snapshot());
        a.merge(&m.snapshot());
        assert_eq!(a.total_messages(), 2);
        assert_eq!(a.time_steps, 2);
        assert_eq!(a.messages_of_label(ProtocolLabel::Maximum), 2);
    }

    #[test]
    fn messages_per_step_handles_zero_steps() {
        let s = CommStats::default();
        assert_eq!(s.messages_per_step(), 0.0);
    }

    #[test]
    fn display_contains_totals() {
        let mut m = CostMeter::new();
        m.record(MessageKind::Broadcast);
        m.record_time_step();
        let text = m.snapshot().to_string();
        assert!(text.contains("1 messages over 1 steps"));
        assert!(text.contains("broadcast"));
        assert!(format!("{}", ProtocolLabel::Dense).contains("dense"));
        assert!(format!("{}", MessageKind::Upstream).contains("upstream"));
    }
}
