//! Fault plans: the declarative description of an unreliable execution.
//!
//! The paper proves its competitive bounds under reliable synchronous
//! channels and a fixed node population. [`FaultSpec`] describes how to break
//! those assumptions *deterministically*: every probabilistic decision (drop
//! a message? delay it by how many rounds? crash this node?) is driven by a
//! dedicated ChaCha8 stream seeded from [`FaultSpec::seed`], entirely
//! separate from the per-node protocol RNG streams. Two runs with the same
//! spec, the same engine seed and the same input therefore produce identical
//! replies, identical `CommStats` and identical [`FaultStats`] — faults are
//! reproducible experiments, not flaky noise (`docs/FAULTS.md` spells out the
//! full contract).
//!
//! The spec itself is pure data (this crate stays runtime-free); the
//! machinery that executes a plan is `topk_net::FaultyTransport` for the
//! in-process engines and `RemoteEngine`'s poll/retry path for loopback TCP.
//!
//! ## Fault model in one paragraph
//!
//! The broadcast channel is reliable — it models a radio the server controls,
//! and a rejoining node replays missed broadcasts before resuming, so
//! broadcast state (filter parameters, group-wide assignments) is never
//! stale. Unreliability lives on the per-node links and in the node processes
//! themselves: server → node unicasts can be lost, node → server existence
//! replies can be lost, delayed by whole protocol rounds, or reordered within
//! a round, and a node can crash (observing nothing, sending nothing,
//! receiving no unicasts) and later rejoin, at which point the server replays
//! its current group and filter before the node's next observation is
//! admitted. Lost messages still cost one unit — "sent but lost" is exactly
//! the degradation the fault campaign measures.

use crate::cost::MessageKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Latency injected into upstream existence replies, measured in protocol
/// rounds (the only time unit finer than an observation step the model has).
///
/// A reply delayed by `d` rounds surfaces in round `r + d` of the *same*
/// existence run; replies still queued when the run ends are discarded as
/// stale (and counted in [`FaultStats::stale_replies`]). Delays never leak
/// across runs, so a delayed reply always answers the predicate the server is
/// currently asking about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencySpec {
    /// No injected latency: replies surface in the round they were sent.
    Immediate,
    /// Every affected reply is delayed by exactly this many rounds.
    Fixed(
        /// The delay in rounds (0 behaves like `Immediate`).
        u32,
    ),
    /// Each reply is delayed by a uniform draw from `lo..=hi` rounds.
    Uniform {
        /// Smallest possible delay in rounds.
        lo: u32,
        /// Largest possible delay in rounds (inclusive).
        hi: u32,
    },
}

impl LatencySpec {
    /// Whether this spec can never delay anything.
    pub fn is_immediate(&self) -> bool {
        match self {
            LatencySpec::Immediate => true,
            LatencySpec::Fixed(d) => *d == 0,
            LatencySpec::Uniform { lo, hi } => *lo == 0 && *hi == 0,
        }
    }
}

/// Crash/rejoin plan: nodes fail independently and come back after a fixed
/// outage.
///
/// At the start of every observation step, each currently-up node crashes
/// with probability `crash_permille / 1000` (subject to the `max_down`
/// concurrency cap, applied in ascending node-id order). A crashed node stays
/// down for `down_steps` observation steps: it observes nothing (its last
/// delivered value freezes), sends nothing, and receives no unicasts — which
/// is precisely how its filter can go stale. On rejoin the transport replays
/// the server's current group and filter to the node (charged as
/// `ProtocolLabel::Recovery` downstream unicasts) *before* the step's
/// observation is delivered, so a rejoined node can never report a violation
/// against a stale filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Per-node, per-step crash probability in permille (0..=1000).
    pub crash_permille: u32,
    /// How many observation steps a crashed node stays down (min 1).
    pub down_steps: u64,
    /// Upper bound on simultaneously-down nodes; crash coins that would
    /// exceed it are ignored (the coin is still flipped, keeping the fault
    /// stream deterministic).
    pub max_down: usize,
}

/// A complete, deterministic fault plan.
///
/// [`FaultSpec::none`] is the identity plan: the transport wrapper forwards
/// every operation verbatim and consumes no randomness whatsoever, so a
/// zero-fault wrapped engine stays bit-identical to the unwrapped engine —
/// the differential battery in `tests/indexed_differential.rs` holds the
/// fault layer to exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the fault-plan RNG stream (independent of all node streams).
    pub seed: u64,
    /// Probability, in permille, that an upstream existence reply is lost in
    /// transit. The sender already paid for it — lost messages are charged.
    pub drop_upstream_permille: u32,
    /// Probability, in permille, that a server → node unicast (filter/group
    /// assignment, probe request) is lost in transit. The server does not
    /// retry fire-and-forget unicasts; probes retry and then fall back to the
    /// last known value. Lost unicasts are charged.
    pub drop_downstream_permille: u32,
    /// Probability, in permille, that the replies of one existence round are
    /// shuffled out of node-id order before delivery.
    pub reorder_permille: u32,
    /// Latency distribution applied to upstream existence replies.
    pub latency: LatencySpec,
    /// Node crash/rejoin plan, if any.
    pub crash: Option<CrashSpec>,
}

impl FaultSpec {
    /// The identity plan: no faults, no randomness consumed, bit-identical
    /// pass-through.
    pub const fn none() -> FaultSpec {
        FaultSpec {
            seed: 0,
            drop_upstream_permille: 0,
            drop_downstream_permille: 0,
            reorder_permille: 0,
            latency: LatencySpec::Immediate,
            crash: None,
        }
    }

    /// A pure latency plan: every existence reply is delayed by a uniform
    /// draw from `lo..=hi` rounds.
    pub const fn latency_rounds(seed: u64, lo: u32, hi: u32) -> FaultSpec {
        FaultSpec {
            seed,
            latency: LatencySpec::Uniform { lo, hi },
            ..FaultSpec::none()
        }
    }

    /// A pure upstream-loss plan: each existence reply or probe answer is
    /// dropped with probability `permille / 1000`.
    pub const fn drop_upstream(seed: u64, permille: u32) -> FaultSpec {
        FaultSpec {
            seed,
            drop_upstream_permille: permille,
            ..FaultSpec::none()
        }
    }

    /// A pure churn plan: nodes crash and rejoin per `CrashSpec`.
    pub const fn crash_rejoin(
        seed: u64,
        crash_permille: u32,
        down_steps: u64,
        max_down: usize,
    ) -> FaultSpec {
        FaultSpec {
            seed,
            crash: Some(CrashSpec {
                crash_permille,
                down_steps,
                max_down,
            }),
            ..FaultSpec::none()
        }
    }

    /// Whether this is the identity plan (no fault machinery engages).
    pub fn is_none(&self) -> bool {
        self.drop_upstream_permille == 0
            && self.drop_downstream_permille == 0
            && self.reorder_permille == 0
            && self.latency.is_immediate()
            && self.crash.is_none()
    }

    /// The fault family this plan belongs to, used as the campaign axis key:
    /// `"latency"`, `"drop"`, `"crash"`, `"none"`, or `"mixed"` when several
    /// mechanisms are active at once.
    pub fn family(&self) -> &'static str {
        let latency = !self.latency.is_immediate();
        let drop = self.drop_upstream_permille > 0
            || self.drop_downstream_permille > 0
            || self.reorder_permille > 0;
        let crash = self.crash.is_some();
        match (latency, drop, crash) {
            (false, false, false) => "none",
            (true, false, false) => "latency",
            (false, true, false) => "drop",
            (false, false, true) => "crash",
            _ => "mixed",
        }
    }

    /// Panics if any probability field is outside 0..=1000 or the crash plan
    /// is degenerate — a fault plan must be executable as written.
    pub fn validate(&self) {
        assert!(
            self.drop_upstream_permille <= 1000
                && self.drop_downstream_permille <= 1000
                && self.reorder_permille <= 1000,
            "fault probabilities are permille values (0..=1000): {self:?}"
        );
        if let LatencySpec::Uniform { lo, hi } = self.latency {
            assert!(lo <= hi, "empty latency range {lo}..={hi}");
        }
        if let Some(c) = self.crash {
            assert!(c.crash_permille <= 1000, "crash_permille > 1000: {c:?}");
            assert!(c.down_steps >= 1, "a crash must last at least one step");
            assert!(c.max_down >= 1, "max_down of 0 disables crashes; use None");
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        write!(f, "{}[", self.family())?;
        let mut sep = "";
        if self.drop_upstream_permille > 0 {
            write!(f, "{sep}up-drop {}‰", self.drop_upstream_permille)?;
            sep = " ";
        }
        if self.drop_downstream_permille > 0 {
            write!(f, "{sep}down-drop {}‰", self.drop_downstream_permille)?;
            sep = " ";
        }
        if self.reorder_permille > 0 {
            write!(f, "{sep}reorder {}‰", self.reorder_permille)?;
            sep = " ";
        }
        match self.latency {
            LatencySpec::Immediate => {}
            LatencySpec::Fixed(d) => {
                write!(f, "{sep}delay {d}r")?;
                sep = " ";
            }
            LatencySpec::Uniform { lo, hi } => {
                write!(f, "{sep}delay {lo}-{hi}r")?;
                sep = " ";
            }
        }
        if let Some(c) = self.crash {
            write!(
                f,
                "{sep}crash {}‰×{}s≤{}",
                c.crash_permille, c.down_steps, c.max_down
            )?;
        }
        write!(f, " seed {}]", self.seed)
    }
}

/// Counters of what a fault plan actually did during a run.
///
/// Exposed by `topk_net::FaultyTransport::fault_stats` so tests and the
/// degradation campaign can assert that faults genuinely fired (a plan whose
/// counters are all zero degraded nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Upstream existence replies lost in transit (charged, not delivered).
    pub dropped_upstream: u64,
    /// Server → node unicasts lost in transit (charged, not delivered),
    /// including every unicast addressed to a crashed node.
    pub dropped_downstream: u64,
    /// Replies delayed into a later round of the same run.
    pub delayed_replies: u64,
    /// Delayed replies discarded because their existence run ended first.
    pub stale_replies: u64,
    /// Existence rounds whose replies were delivered out of order.
    pub reordered_rounds: u64,
    /// Node crashes that took effect.
    pub crashes: u64,
    /// Nodes that completed the rejoin handshake.
    pub rejoins: u64,
    /// Downstream unicasts spent replaying group/filter state on rejoin
    /// (attributed to `ProtocolLabel::Recovery` on the meter).
    pub recovery_messages: u64,
    /// Probes that exhausted their retries and fell back to the server's
    /// last known value for the node.
    pub probe_fallbacks: u64,
}

impl FaultStats {
    /// Total messages the plan destroyed in transit (both directions).
    pub fn dropped(&self) -> u64 {
        self.dropped_upstream + self.dropped_downstream
    }
}

/// The message kinds a fault plan may drop — documented here so the
/// accounting contract ("lost messages are still charged") has a single
/// normative list: [`MessageKind::Upstream`] replies and
/// [`MessageKind::DownstreamUnicast`]s. Broadcasts are never dropped.
pub const DROPPABLE_KINDS: [MessageKind; 2] =
    [MessageKind::Upstream, MessageKind::DownstreamUnicast];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none_and_everything_else_is_not() {
        assert!(FaultSpec::none().is_none());
        assert_eq!(FaultSpec::none().family(), "none");
        assert!(!FaultSpec::latency_rounds(1, 0, 2).is_none());
        assert!(!FaultSpec::drop_upstream(1, 5).is_none());
        assert!(!FaultSpec::crash_rejoin(1, 5, 2, 4).is_none());
        // A Fixed(0) delay is the identity.
        let mut spec = FaultSpec::none();
        spec.latency = LatencySpec::Fixed(0);
        assert!(spec.is_none());
    }

    #[test]
    fn families_are_classified() {
        assert_eq!(FaultSpec::latency_rounds(1, 1, 2).family(), "latency");
        assert_eq!(FaultSpec::drop_upstream(1, 100).family(), "drop");
        assert_eq!(FaultSpec::crash_rejoin(1, 50, 3, 8).family(), "crash");
        let mut mixed = FaultSpec::drop_upstream(1, 100);
        mixed.latency = LatencySpec::Fixed(1);
        assert_eq!(mixed.family(), "mixed");
        let mut reorder = FaultSpec::none();
        reorder.reorder_permille = 200;
        assert_eq!(reorder.family(), "drop");
    }

    #[test]
    fn validate_accepts_presets() {
        FaultSpec::none().validate();
        FaultSpec::latency_rounds(7, 1, 3).validate();
        FaultSpec::drop_upstream(7, 1000).validate();
        FaultSpec::crash_rejoin(7, 1000, 1, 1).validate();
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn validate_rejects_out_of_range_probability() {
        FaultSpec::drop_upstream(0, 1001).validate();
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn validate_rejects_zero_length_outage() {
        FaultSpec::crash_rejoin(0, 10, 0, 4).validate();
    }

    #[test]
    fn display_names_the_active_mechanisms() {
        assert_eq!(FaultSpec::none().to_string(), "none");
        let s = FaultSpec::crash_rejoin(9, 30, 6, 16).to_string();
        assert!(s.contains("crash"), "{s}");
        assert!(s.contains("seed 9"), "{s}");
        let s = FaultSpec::latency_rounds(2, 1, 2).to_string();
        assert!(s.contains("delay 1-2r"), "{s}");
    }

    #[test]
    fn spec_round_trips_through_json() {
        for spec in [
            FaultSpec::none(),
            FaultSpec::latency_rounds(3, 1, 4),
            FaultSpec::drop_upstream(4, 250),
            FaultSpec::crash_rejoin(5, 40, 6, 12),
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: FaultSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }
}
