//! Broadcast filter rules.
//!
//! The protocols of the paper rarely ship explicit intervals to individual
//! nodes. Instead the server broadcasts a small set of *parameters* (for example
//! the separating value `m` of the generic framework, or the current interval
//! bounds `ℓ_r`, `u_r` of `DenseProtocol`) and every node derives its own filter
//! from the parameters and its *group* (inside/outside the output, or the
//! `V_1/V_2/V_3` and `S_1/S_2` membership of Sect. 5). This is what makes a single
//! broadcast message sufficient to update all `n` filters.
//!
//! [`NodeGroup`] is the per-node state, [`FilterParams`] is the broadcast
//! payload, and [`filter_for`] is the pure function both the server (for
//! bookkeeping and validation) and the nodes (for actual filtering) evaluate.
//! Keeping it in `topk-model` guarantees the two sides can never disagree.

use crate::filter::Filter;
use crate::types::Value;
use serde::{Deserialize, Serialize};

/// The group a node currently belongs to, as assigned by the server.
///
/// * `Upper` / `Lower` are used by the generic halving framework (Sect. 3), the
///   exact top-k protocol (Corollary 3.3) and `TopKProtocol` (Sect. 4): nodes in
///   the output set are `Upper`, the rest are `Lower`.
/// * `V1`, `V2`, `V3` are the partition maintained by `DenseProtocol` and
///   `SubProtocol` (Sect. 5). For `V2` nodes the two flags record membership in
///   the candidate sets `S_1`/`S_2` (or `S'_1`/`S'_2` while `SubProtocol` runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeGroup {
    /// Member of the output set under a separator rule; filter `[lo, ∞)`.
    Upper,
    /// Non-member of the output set under a separator rule; filter `[0, hi]`.
    Lower,
    /// `V_1`: definitely part of every valid output (`v > z/(1−ε)` observed).
    V1,
    /// `V_2`: undecided nodes in the ε-neighbourhood of `z`; `s1`/`s2` record
    /// membership in the candidate sets `S_1`/`S_2` (resp. `S'_1`/`S'_2`).
    V2 {
        /// Membership in `S_1` (observed a value above the current upper guess).
        s1: bool,
        /// Membership in `S_2` (observed a value below the current lower guess).
        s2: bool,
    },
    /// `V_3`: definitely not part of any valid output (`v < (1−ε)z` observed).
    V3,
}

impl NodeGroup {
    /// Plain `V_2` membership with empty `S_1`/`S_2` flags.
    pub const V2_PLAIN: NodeGroup = NodeGroup::V2 {
        s1: false,
        s2: false,
    };

    /// Whether this group puts the node into the server's output set by default.
    ///
    /// `V_2` nodes may or may not be in the output depending on the cardinality
    /// constraint `|F(t)| = k`; this helper only answers for the unambiguous
    /// groups and treats `V2` as "eligible".
    pub fn output_eligible(&self) -> bool {
        !matches!(
            self,
            NodeGroup::Lower
                | NodeGroup::V3
                | NodeGroup::V2 {
                    s2: true,
                    s1: false
                }
        )
    }
}

/// Parameters broadcast by the server from which every node derives its filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FilterParams {
    /// Generic-framework separator: `Upper` nodes get `[lo, ∞)`, `Lower` nodes
    /// get `[0, hi]`. The exact protocols use `lo == hi == m`; `TopKProtocol`'s
    /// final phase (P4) uses `lo < hi ≤ lo/(1−ε)`.
    Separator {
        /// Lower bound assigned to `Upper` nodes.
        lo: Value,
        /// Upper bound assigned to `Lower` nodes.
        hi: Value,
    },
    /// `DenseProtocol` round parameters (step 2 of the protocol).
    ///
    /// `l_r` is the midpoint of the current guess interval `L_r`,
    /// `u_r = l_r/(1−ε)`, `z_lo = (1−ε)z` and `z_hi = z/(1−ε)` are precomputed by
    /// the server so nodes need no ε-arithmetic.
    Dense {
        /// `ℓ_r` — lower separator of the current round.
        l_r: Value,
        /// `u_r = ℓ_r/(1−ε)` — upper separator of the current round.
        u_r: Value,
        /// `(1−ε)·z` — lower end of the ε-neighbourhood of the pivot `z`.
        z_lo: Value,
        /// `z/(1−ε)` — upper end of the ε-neighbourhood of the pivot `z`.
        z_hi: Value,
    },
    /// `SubProtocol` round parameters (step 2 of the sub-protocol). Carries both
    /// the enclosing `DenseProtocol` separator `l_r` and the sub-round separators
    /// `l_rp = ℓ'_{r'}`, `u_rp = u'_{r'}`.
    SubDense {
        /// `ℓ_r` of the enclosing `DenseProtocol` round.
        l_r: Value,
        /// `ℓ'_{r'}` — lower separator of the current sub-round.
        l_rp: Value,
        /// `u'_{r'} = ℓ'_{r'}/(1−ε)` — upper separator of the current sub-round.
        u_rp: Value,
        /// `(1−ε)·z`.
        z_lo: Value,
        /// `z/(1−ε)`.
        z_hi: Value,
    },
}

/// Derives the filter a node with group `group` uses under the broadcast
/// parameters `params`.
///
/// This is the single source of truth for the filter tables in step 2 of
/// `DenseProtocol` and `SubProtocol` and for the generic separator rule. Both
/// the node simulation and the server-side bookkeeping call this function, so a
/// disagreement between the two sides is impossible by construction.
///
/// The function never constructs an empty interval: if rounding ever makes a
/// lower bound exceed its upper bound the two are swapped into the singleton
/// interval at the upper bound, which keeps the node silent only on exactly that
/// value (and is therefore conservative: it can only cause *more* reports, never
/// missed violations).
pub fn filter_for(group: NodeGroup, params: &FilterParams) -> Filter {
    match (*params, group) {
        (FilterParams::Separator { lo, .. }, NodeGroup::Upper) => Filter::at_least(lo),
        (FilterParams::Separator { hi, .. }, NodeGroup::Lower) => Filter::at_most(hi),
        // Degenerate combinations: a node in a dense group while a separator rule
        // is broadcast keeps the conservative choice derived from eligibility.
        (FilterParams::Separator { lo, hi }, g) => {
            if g.output_eligible() {
                Filter::at_least(lo)
            } else {
                Filter::at_most(hi)
            }
        }

        (FilterParams::Dense { l_r, .. }, NodeGroup::V1) => Filter::at_least(l_r),
        (FilterParams::Dense { u_r, .. }, NodeGroup::V3) => Filter::at_most(u_r),
        (
            FilterParams::Dense {
                l_r,
                u_r,
                z_lo,
                z_hi,
            },
            NodeGroup::V2 { s1, s2 },
        ) => {
            match (s1, s2) {
                // V2 ∩ S1 (only): [ℓ_r, z/(1−ε)]
                (true, false) => bounded_or_singleton(l_r, z_hi),
                // V2 \ S: [ℓ_r, u_r]
                (false, false) => bounded_or_singleton(l_r, u_r),
                // V2 ∩ S2 (only): [(1−ε)z, u_r]
                (false, true) => bounded_or_singleton(z_lo, u_r),
                // In both S1 and S2 the DenseProtocol immediately hands over to
                // SubProtocol; until the SubDense parameters arrive the node uses
                // the widest of the two candidate intervals so that no violation
                // can be missed.
                (true, true) => bounded_or_singleton(z_lo, z_hi),
            }
        }
        (FilterParams::Dense { l_r, u_r, .. }, NodeGroup::Upper) => bounded_or_singleton(l_r, u_r),
        (FilterParams::Dense { l_r, u_r, .. }, NodeGroup::Lower) => bounded_or_singleton(l_r, u_r),

        (FilterParams::SubDense { l_r, .. }, NodeGroup::V1) => Filter::at_least(l_r),
        (FilterParams::SubDense { u_rp, .. }, NodeGroup::V3) => Filter::at_most(u_rp),
        (
            FilterParams::SubDense {
                l_r,
                l_rp,
                u_rp,
                z_lo,
                z_hi,
            },
            NodeGroup::V2 { s1, s2 },
        ) => match (s1, s2) {
            // V2 ∩ (S'1 \ S'2): [ℓ_r, z/(1−ε)]
            (true, false) => bounded_or_singleton(l_r, z_hi),
            // V2 ∩ S'1 ∩ S'2: [ℓ'_{r'}, z/(1−ε)]
            (true, true) => bounded_or_singleton(l_rp, z_hi),
            // V2 \ S': [ℓ_r, u'_{r'}]
            (false, false) => bounded_or_singleton(l_r, u_rp),
            // V2 ∩ (S'2 \ S'1): [(1−ε)z, u'_{r'}]
            (false, true) => bounded_or_singleton(z_lo, u_rp),
        },
        (FilterParams::SubDense { l_rp, u_rp, .. }, NodeGroup::Upper) => {
            bounded_or_singleton(l_rp, u_rp)
        }
        (FilterParams::SubDense { l_rp, u_rp, .. }, NodeGroup::Lower) => {
            bounded_or_singleton(l_rp, u_rp)
        }
    }
}

/// `[lo, hi]` if `lo ≤ hi`, otherwise the singleton `[hi, hi]` (see
/// [`filter_for`] for why this is the conservative degenerate choice).
fn bounded_or_singleton(lo: Value, hi: Value) -> Filter {
    if lo <= hi {
        Filter::bounded(lo, hi).expect("lo <= hi checked")
    } else {
        Filter::bounded(hi, hi).expect("singleton filter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epsilon::Epsilon;

    fn dense_params(eps: Epsilon, l_r: Value, z: Value) -> FilterParams {
        FilterParams::Dense {
            l_r,
            u_r: eps.scale_up(l_r),
            z_lo: eps.scale_down(z),
            z_hi: eps.scale_up(z),
        }
    }

    #[test]
    fn separator_rule() {
        let p = FilterParams::Separator { lo: 50, hi: 50 };
        assert_eq!(filter_for(NodeGroup::Upper, &p), Filter::at_least(50));
        assert_eq!(filter_for(NodeGroup::Lower, &p), Filter::at_most(50));
    }

    #[test]
    fn separator_rule_with_gap() {
        let p = FilterParams::Separator { lo: 40, hi: 60 };
        assert_eq!(filter_for(NodeGroup::Upper, &p), Filter::at_least(40));
        assert_eq!(filter_for(NodeGroup::Lower, &p), Filter::at_most(60));
        // Dense groups under a separator rule fall back to eligibility.
        assert_eq!(filter_for(NodeGroup::V1, &p), Filter::at_least(40));
        assert_eq!(filter_for(NodeGroup::V3, &p), Filter::at_most(60));
    }

    #[test]
    fn dense_rule_matches_paper_table() {
        let eps = Epsilon::HALF;
        let z = 100; // neighbourhood [50, 200]
        let p = dense_params(eps, 80, z); // u_r = 160
        assert_eq!(filter_for(NodeGroup::V1, &p), Filter::at_least(80));
        assert_eq!(filter_for(NodeGroup::V3, &p), Filter::at_most(160));
        assert_eq!(
            filter_for(
                NodeGroup::V2 {
                    s1: true,
                    s2: false
                },
                &p
            ),
            Filter::bounded(80, 200).unwrap()
        );
        assert_eq!(
            filter_for(NodeGroup::V2_PLAIN, &p),
            Filter::bounded(80, 160).unwrap()
        );
        assert_eq!(
            filter_for(
                NodeGroup::V2 {
                    s1: false,
                    s2: true
                },
                &p
            ),
            Filter::bounded(50, 160).unwrap()
        );
        assert_eq!(
            filter_for(NodeGroup::V2 { s1: true, s2: true }, &p),
            Filter::bounded(50, 200).unwrap()
        );
    }

    #[test]
    fn sub_dense_rule_matches_paper_table() {
        let eps = Epsilon::HALF;
        let z = 100;
        let p = FilterParams::SubDense {
            l_r: 80,
            l_rp: 60,
            u_rp: eps.scale_up(60), // 120
            z_lo: eps.scale_down(z),
            z_hi: eps.scale_up(z),
        };
        assert_eq!(filter_for(NodeGroup::V1, &p), Filter::at_least(80));
        assert_eq!(filter_for(NodeGroup::V3, &p), Filter::at_most(120));
        assert_eq!(
            filter_for(
                NodeGroup::V2 {
                    s1: true,
                    s2: false
                },
                &p
            ),
            Filter::bounded(80, 200).unwrap()
        );
        assert_eq!(
            filter_for(NodeGroup::V2 { s1: true, s2: true }, &p),
            Filter::bounded(60, 200).unwrap()
        );
        assert_eq!(
            filter_for(NodeGroup::V2_PLAIN, &p),
            Filter::bounded(80, 120).unwrap()
        );
        assert_eq!(
            filter_for(
                NodeGroup::V2 {
                    s1: false,
                    s2: true
                },
                &p
            ),
            Filter::bounded(50, 120).unwrap()
        );
    }

    #[test]
    fn degenerate_bounds_become_singletons() {
        // l_r > u_r can only arise through extreme rounding; the rule must not panic.
        let p = FilterParams::Dense {
            l_r: 10,
            u_r: 5,
            z_lo: 4,
            z_hi: 3,
        };
        assert_eq!(
            filter_for(NodeGroup::V2_PLAIN, &p),
            Filter::bounded(5, 5).unwrap()
        );
        assert_eq!(
            filter_for(
                NodeGroup::V2 {
                    s1: true,
                    s2: false
                },
                &p
            ),
            Filter::bounded(3, 3).unwrap()
        );
    }

    #[test]
    fn output_eligibility() {
        assert!(NodeGroup::Upper.output_eligible());
        assert!(!NodeGroup::Lower.output_eligible());
        assert!(NodeGroup::V1.output_eligible());
        assert!(!NodeGroup::V3.output_eligible());
        assert!(NodeGroup::V2_PLAIN.output_eligible());
        assert!(NodeGroup::V2 {
            s1: true,
            s2: false
        }
        .output_eligible());
        assert!(!NodeGroup::V2 {
            s1: false,
            s2: true
        }
        .output_eligible());
        assert!(NodeGroup::V2 { s1: true, s2: true }.output_eligible());
    }
}
