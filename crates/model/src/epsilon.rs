//! Exact rational representation of the approximation error `ε`.
//!
//! Every comparison in the paper involving `ε` is of the form
//! `x ≥ (1 − ε) · y` or `x > y / (1 − ε)` for natural numbers `x`, `y`. Performing
//! these with floating point would make the validity of filter sets (Observation
//! 2.2) depend on rounding noise, which in turn could flip message counts in the
//! experiments. We therefore keep `ε = p/q` as an exact rational and carry out all
//! comparisons in 128-bit integer arithmetic.

use crate::types::Value;
use crate::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The approximation error `ε ∈ (0, 1)` as an exact rational `p/q`.
///
/// The most common instantiations in the paper are `ε = 1/2` (the largest error
/// Sect. 4 allows) and powers of two `ε = 2^{-j}`; both are exactly representable.
///
/// All arithmetic keeps values in `u128` intermediates, so no overflow can occur
/// for observed values up to `2^63` and denominators up to `2^32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Epsilon {
    /// Numerator `p` with `0 < p < q`.
    num: u32,
    /// Denominator `q`.
    den: u32,
}

impl Epsilon {
    /// Creates `ε = num/den`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidEpsilon`] unless `0 < num/den < 1`.
    pub fn new(num: u32, den: u32) -> Result<Self, ModelError> {
        if den == 0 || num == 0 || num >= den {
            return Err(ModelError::InvalidEpsilon { num, den });
        }
        let g = gcd(num, den);
        Ok(Epsilon {
            num: num / g,
            den: den / g,
        })
    }

    /// Creates `ε = 2^{-j}` for `1 ≤ j ≤ 31`.
    ///
    /// # Panics
    ///
    /// Panics if `j == 0` or `j > 31`.
    pub fn pow2_inverse(j: u32) -> Self {
        assert!(
            (1..=31).contains(&j),
            "2^-j only supported for 1 <= j <= 31"
        );
        Epsilon {
            num: 1,
            den: 1u32 << j,
        }
    }

    /// The canonical `ε = 1/2`, the largest error considered in Sect. 4 of the paper.
    pub const HALF: Epsilon = Epsilon { num: 1, den: 2 };

    /// `ε = 1/10`, a convenient default for examples.
    pub const TENTH: Epsilon = Epsilon { num: 1, den: 10 };

    /// Approximates an `f64` error by a rational with denominator `2^20`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidEpsilon`] if the input is not strictly between
    /// 0 and 1 (after rounding to the grid).
    pub fn from_f64(eps: f64) -> Result<Self, ModelError> {
        const DEN: u32 = 1 << 20;
        if !(eps.is_finite()) {
            return Err(ModelError::InvalidEpsilon { num: 0, den: DEN });
        }
        let num = (eps * f64::from(DEN)).round();
        if !(num >= 1.0 && num < f64::from(DEN)) {
            return Err(ModelError::InvalidEpsilon {
                num: num.max(0.0) as u32,
                den: DEN,
            });
        }
        Epsilon::new(num as u32, DEN)
    }

    /// Returns `ε` as a floating-point number (for reporting only).
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from(self.num) / f64::from(self.den)
    }

    /// Numerator of the reduced fraction.
    #[inline]
    pub fn numerator(self) -> u32 {
        self.num
    }

    /// Denominator of the reduced fraction.
    #[inline]
    pub fn denominator(self) -> u32 {
        self.den
    }

    /// Returns `ε/2`, used by Corollary 5.9 where the adversary's error is `ε' ≤ ε/2`.
    pub fn halved(self) -> Epsilon {
        if self.num % 2 == 0 {
            Epsilon {
                num: self.num / 2,
                den: self.den,
            }
        } else {
            Epsilon {
                num: self.num,
                den: self
                    .den
                    .checked_mul(2)
                    .expect("epsilon denominator overflow when halving"),
            }
        }
    }

    /// `⌊(1 − ε) · v⌋` — the largest integer not exceeding `(1 − ε)·v`.
    ///
    /// Used for the lower end of the ε-neighbourhood `A(t)` and for lower filter
    /// bounds; rounding *down* keeps every value that the real-valued definition
    /// admits.
    #[inline]
    pub fn scale_down(self, v: Value) -> Value {
        let q = u128::from(self.den);
        let p = u128::from(self.num);
        ((u128::from(v) * (q - p)) / q) as Value
    }

    /// `⌊v / (1 − ε)⌋` — the largest integer not exceeding `v/(1−ε)`, saturating
    /// at [`Value::MAX`].
    ///
    /// Used for the upper end of the ε-neighbourhood and for upper filter bounds.
    #[inline]
    pub fn scale_up(self, v: Value) -> Value {
        let q = u128::from(self.den);
        let p = u128::from(self.num);
        let r = (u128::from(v) * q) / (q - p);
        if r > u128::from(Value::MAX) {
            Value::MAX
        } else {
            r as Value
        }
    }

    /// Exact test `a ≥ (1 − ε) · b`.
    ///
    /// This is the filter-overlap condition of Observation 2.2: a pair of filters
    /// `F_i = [ℓ_i, u_i]` (inside the output) and `F_j = [ℓ_j, u_j]` (outside) is
    /// compatible iff `ℓ_i ≥ (1 − ε) · u_j`.
    #[inline]
    pub fn ge_one_minus_eps_times(self, a: Value, b: Value) -> bool {
        let q = u128::from(self.den);
        let p = u128::from(self.num);
        u128::from(a) * q >= u128::from(b) * (q - p)
    }

    /// Exact test `a > b / (1 − ε)`, i.e. "`a` is clearly larger than `b`"
    /// (`a ∈ E(t)` when `b` is the k-th largest value).
    #[inline]
    pub fn clearly_larger(self, a: Value, b: Value) -> bool {
        let q = u128::from(self.den);
        let p = u128::from(self.num);
        u128::from(a) * (q - p) > u128::from(b) * q
    }

    /// Exact test `a < (1 − ε) · b`, i.e. "`a` is clearly smaller than `b`".
    #[inline]
    pub fn clearly_smaller(self, a: Value, b: Value) -> bool {
        let q = u128::from(self.den);
        let p = u128::from(self.num);
        u128::from(a) * q < u128::from(b) * (q - p)
    }

    /// Exact test whether `a` lies in the ε-neighbourhood
    /// `A = [(1−ε)·b, b/(1−ε)]` of `b`.
    #[inline]
    pub fn in_neighbourhood(self, a: Value, b: Value) -> bool {
        !self.clearly_larger(a, b) && !self.clearly_smaller(a, b)
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates_range() {
        assert!(Epsilon::new(1, 2).is_ok());
        assert!(Epsilon::new(0, 2).is_err());
        assert!(Epsilon::new(2, 2).is_err());
        assert!(Epsilon::new(3, 2).is_err());
        assert!(Epsilon::new(1, 0).is_err());
    }

    #[test]
    fn construction_reduces_fraction() {
        let e = Epsilon::new(2, 4).unwrap();
        assert_eq!(e, Epsilon::HALF);
        assert_eq!(e.numerator(), 1);
        assert_eq!(e.denominator(), 2);
    }

    #[test]
    fn pow2_inverse_matches_new() {
        assert_eq!(Epsilon::pow2_inverse(1), Epsilon::HALF);
        assert_eq!(Epsilon::pow2_inverse(3), Epsilon::new(1, 8).unwrap());
    }

    #[test]
    #[should_panic]
    fn pow2_inverse_rejects_zero() {
        let _ = Epsilon::pow2_inverse(0);
    }

    #[test]
    fn from_f64_roundtrips_reasonably() {
        let e = Epsilon::from_f64(0.25).unwrap();
        assert!((e.as_f64() - 0.25).abs() < 1e-9);
        assert!(Epsilon::from_f64(0.0).is_err());
        assert!(Epsilon::from_f64(1.0).is_err());
        assert!(Epsilon::from_f64(f64::NAN).is_err());
    }

    #[test]
    fn halved_is_exactly_half() {
        let e = Epsilon::new(1, 4).unwrap();
        assert_eq!(e.halved(), Epsilon::new(1, 8).unwrap());
        let e = Epsilon::new(2, 5).unwrap();
        assert_eq!(e.halved(), Epsilon::new(1, 5).unwrap());
        let e = Epsilon::new(3, 7).unwrap();
        assert_eq!(e.halved(), Epsilon::new(3, 14).unwrap());
    }

    #[test]
    fn scaling_half() {
        let e = Epsilon::HALF;
        assert_eq!(e.scale_down(100), 50);
        assert_eq!(e.scale_up(100), 200);
        assert_eq!(e.scale_down(0), 0);
        assert_eq!(e.scale_up(0), 0);
        // Saturation.
        assert_eq!(e.scale_up(Value::MAX), Value::MAX);
    }

    #[test]
    fn neighbourhood_membership_half() {
        let e = Epsilon::HALF;
        let vk = 100;
        // Clearly larger than 100 means > 200.
        assert!(e.clearly_larger(201, vk));
        assert!(!e.clearly_larger(200, vk));
        // Clearly smaller than 100 means < 50.
        assert!(e.clearly_smaller(49, vk));
        assert!(!e.clearly_smaller(50, vk));
        // Neighbourhood is [50, 200].
        assert!(e.in_neighbourhood(50, vk));
        assert!(e.in_neighbourhood(200, vk));
        assert!(!e.in_neighbourhood(49, vk));
        assert!(!e.in_neighbourhood(201, vk));
    }

    #[test]
    fn filter_overlap_condition() {
        let e = Epsilon::new(1, 10).unwrap();
        // ℓ_i >= (1-ε) u_j  with ε = 0.1: 90 >= 0.9 * 100 holds, 89 does not.
        assert!(e.ge_one_minus_eps_times(90, 100));
        assert!(!e.ge_one_minus_eps_times(89, 100));
    }

    proptest! {
        /// scale_down and clearly_smaller must agree: v is clearly smaller than b
        /// iff v < ⌈(1-ε)·b⌉, and scale_down(b) is never clearly smaller than b... we
        /// check the weaker, load-bearing invariants used by the protocols.
        #[test]
        fn scale_down_is_not_clearly_smaller_boundary(
            num in 1u32..64, den_off in 1u32..64, b in 0u64..1_000_000_000u64
        ) {
            let den = num + den_off;
            let e = Epsilon::new(num, den).unwrap();
            // The value ⌊(1-ε)b⌋ + 1 is never clearly smaller than b
            // (it is ≥ (1-ε)b by construction).
            let lo = e.scale_down(b);
            prop_assert!(!e.clearly_smaller(lo.saturating_add(1), b));
            // Anything strictly below ⌊(1-ε)b⌋ is clearly smaller (when b > 0).
            if lo > 0 {
                prop_assert!(e.clearly_smaller(lo - 1, b) || u128::from(lo - 1 + 1) * u128::from(e.denominator()) >= u128::from(b) * u128::from(e.denominator() - e.numerator()));
            }
        }

        #[test]
        fn scale_up_is_not_clearly_larger(
            num in 1u32..64, den_off in 1u32..64, b in 0u64..1_000_000_000u64
        ) {
            let den = num + den_off;
            let e = Epsilon::new(num, den).unwrap();
            // ⌊b/(1-ε)⌋ is never clearly larger than b.
            prop_assert!(!e.clearly_larger(e.scale_up(b), b));
            // One above it is clearly larger or equal to the true bound.
            prop_assert!(e.clearly_larger(e.scale_up(b) + 1, b) || e.scale_up(b) == Value::MAX);
        }

        #[test]
        fn clearly_larger_and_smaller_are_mutually_exclusive(
            num in 1u32..1000, den_off in 1u32..1000, a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2
        ) {
            let den = num + den_off;
            let e = Epsilon::new(num, den).unwrap();
            prop_assert!(!(e.clearly_larger(a, b) && e.clearly_smaller(a, b)));
            // Exactly one of the three relations holds.
            let in_nb = e.in_neighbourhood(a, b);
            let larger = e.clearly_larger(a, b);
            let smaller = e.clearly_smaller(a, b);
            prop_assert_eq!(1, usize::from(in_nb) + usize::from(larger) + usize::from(smaller));
        }

        #[test]
        fn overlap_condition_matches_definition(
            num in 1u32..100, den_off in 1u32..100, a in 0u64..1_000_000u64, b in 0u64..1_000_000u64
        ) {
            let den = num + den_off;
            let e = Epsilon::new(num, den).unwrap();
            let exact = u128::from(a) * u128::from(den) >= u128::from(b) * u128::from(den - num);
            prop_assert_eq!(e.ge_one_minus_eps_times(a, b), exact);
        }

        #[test]
        fn halved_value_is_half(num in 1u32..1000, den_off in 1u32..1000) {
            let den = num + den_off;
            let e = Epsilon::new(num, den).unwrap();
            let h = e.halved();
            // h == e/2 exactly: num_h/den_h == num/(2 den)
            prop_assert_eq!(
                u64::from(h.numerator()) * 2 * u64::from(e.denominator()),
                u64::from(e.numerator()) * u64::from(h.denominator())
            );
        }
    }
}
