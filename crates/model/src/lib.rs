//! # topk-model
//!
//! Execution-model substrate for *(approximate) Top-k-Position Monitoring of
//! Distributed Streams* (Mäcker, Malatyali, Meyer auf der Heide, 2016).
//!
//! The crate contains every type that the simulation runtime (`topk-net`), the
//! workload generators (`topk-gen`), the offline baselines (`topk-offline`) and
//! the online protocols (`topk-core`) agree on:
//!
//! * [`Value`], [`NodeId`] and [`TimeStep`] — the raw vocabulary of the
//!   continuous distributed monitoring model,
//! * [`Epsilon`] — the approximation error `ε ∈ (0, 1)` represented as an exact
//!   rational so that all neighbourhood comparisons are integer-exact,
//! * [`Filter`] and [`FilterSet`] — the intervals the server assigns to nodes and
//!   the validity condition of Observation 2.2 of the paper,
//! * [`NodeGroup`], [`FilterParams`] and [`filter_for`] — the compact broadcast
//!   representation of filter assignments used by the protocols,
//! * [`topk`] — the semantics of the (ε-approximate) top-k-position set:
//!   `π(k,t)`, `E(t)`, `A(t)`, `K(t)`, `σ(t)` and output validation,
//! * [`membership`] — dynamic population churn: [`MembershipEvent`] and the
//!   live/generation map [`Population`],
//! * [`message`] — the wire messages exchanged between server and nodes,
//! * [`cost`] — message/round accounting used for competitive-ratio measurements.
//!
//! The crate is intentionally free of any runtime or randomness so that it can be
//! used from deterministic tests, the threaded engine and the offline solvers alike.
//!
//! ## Model recap
//!
//! `n` nodes each observe a private stream of natural numbers. Between two
//! consecutive observations an interactive protocol of polylogarithmically many
//! rounds may run. Nodes send unicast messages to the server; the server sends
//! unicast messages to single nodes or uses a broadcast channel (one message,
//! received by all nodes). Every message costs one unit. The server must know, at
//! every time step, a set `F(t)` of `k` nodes containing every node whose value is
//! clearly above the k-th largest value and no node whose value is clearly below
//! it, where "clearly" is controlled by `ε`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cost;
pub mod epsilon;
pub mod error;
pub mod fault;
pub mod filter;
pub mod membership;
pub mod message;
pub mod query;
pub mod rule;
pub mod soa;
pub mod topk;
pub mod types;

pub use cost::{CommStats, CostMeter, MessageKind, ProtocolLabel};
pub use epsilon::Epsilon;
pub use error::ModelError;
pub use fault::{CrashSpec, FaultSpec, FaultStats, LatencySpec};
pub use filter::{Filter, FilterSet, Violation};
pub use membership::{MembershipEvent, Population};
pub use message::{NodeMessage, ServerMessage};
pub use query::{NodeSubset, QueryCostLedger, QueryId, QuerySpec, SPLIT_SCALE};
pub use rule::{filter_for, FilterParams, NodeGroup};
pub use soa::NodeStateSoA;
pub use topk::{OutputValidity, TopKView};
pub use types::{NodeId, TimeStep, Value, INFINITY_VALUE};

/// Convenience prelude re-exporting the types used by virtually every consumer.
pub mod prelude {
    pub use crate::cost::{CommStats, CostMeter, MessageKind, ProtocolLabel};
    pub use crate::epsilon::Epsilon;
    pub use crate::error::ModelError;
    pub use crate::fault::{CrashSpec, FaultSpec, FaultStats, LatencySpec};
    pub use crate::filter::{Filter, FilterSet, Violation};
    pub use crate::membership::{MembershipEvent, Population};
    pub use crate::message::{NodeMessage, ServerMessage};
    pub use crate::query::{NodeSubset, QueryCostLedger, QueryId, QuerySpec, SPLIT_SCALE};
    pub use crate::rule::{filter_for, FilterParams, NodeGroup};
    pub use crate::topk::{OutputValidity, TopKView};
    pub use crate::types::{NodeId, TimeStep, Value};
}
