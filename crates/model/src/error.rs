//! Error types shared across the workspace.

use crate::types::{NodeId, TimeStep};
use std::fmt;

/// Errors produced by model-level validation and by the simulation engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The approximation error must satisfy `0 < ε < 1`.
    InvalidEpsilon {
        /// Offending numerator.
        num: u32,
        /// Offending denominator.
        den: u32,
    },
    /// A filter interval with lower bound above its upper bound was constructed.
    EmptyFilter {
        /// Lower bound of the offending filter.
        lo: u64,
        /// Upper bound of the offending filter (`None` encodes `∞`).
        hi: Option<u64>,
    },
    /// `k` must satisfy `1 ≤ k < n`.
    InvalidK {
        /// Requested `k`.
        k: usize,
        /// Number of nodes.
        n: usize,
    },
    /// A trace with no nodes or no time steps was supplied.
    EmptyTrace,
    /// A trace whose rows do not all have the same number of nodes was supplied.
    RaggedTrace {
        /// Time step at which the row length differs.
        at: TimeStep,
        /// Expected number of nodes.
        expected: usize,
        /// Found number of nodes.
        found: usize,
    },
    /// A node identifier outside `0..n` was used.
    UnknownNode(NodeId),
    /// The server-side protocol produced an output set that violates the
    /// ε-top-k requirements at the given time step.
    InvalidOutput {
        /// Time step at which the violation was detected.
        at: TimeStep,
        /// Human-readable reason.
        reason: String,
    },
    /// The filter set assigned at the end of a protocol exchange is not valid
    /// (Observation 2.2 violated or some node outside its filter).
    InvalidFilterSet {
        /// Time step at which the violation was detected.
        at: TimeStep,
        /// Human-readable reason.
        reason: String,
    },
    /// The protocol exceeded the round budget allowed by the model
    /// (polylogarithmic in `n` and `Δ`).
    RoundBudgetExceeded {
        /// Time step at which the budget was exceeded.
        at: TimeStep,
        /// Rounds used.
        used: u64,
        /// Budget.
        budget: u64,
    },
    /// The threaded engine lost contact with a node thread.
    ChannelClosed(NodeId),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidEpsilon { num, den } => {
                write!(f, "epsilon {num}/{den} is not in the open interval (0, 1)")
            }
            ModelError::EmptyFilter { lo, hi } => match hi {
                Some(hi) => write!(f, "filter [{lo}, {hi}] is empty"),
                None => write!(f, "filter [{lo}, ∞) is malformed"),
            },
            ModelError::InvalidK { k, n } => {
                write!(f, "k = {k} is not in 1..{n} (n = {n})")
            }
            ModelError::EmptyTrace => write!(f, "trace has no nodes or no time steps"),
            ModelError::RaggedTrace {
                at,
                expected,
                found,
            } => write!(
                f,
                "trace row at {at} has {found} values, expected {expected}"
            ),
            ModelError::UnknownNode(id) => write!(f, "unknown node {id}"),
            ModelError::InvalidOutput { at, reason } => {
                write!(f, "invalid output set at {at}: {reason}")
            }
            ModelError::InvalidFilterSet { at, reason } => {
                write!(f, "invalid filter set at {at}: {reason}")
            }
            ModelError::RoundBudgetExceeded { at, used, budget } => write!(
                f,
                "round budget exceeded at {at}: used {used} rounds, budget {budget}"
            ),
            ModelError::ChannelClosed(id) => write!(f, "channel to {id} closed unexpectedly"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ModelError, &str)> = vec![
            (ModelError::InvalidEpsilon { num: 3, den: 2 }, "3/2"),
            (ModelError::EmptyFilter { lo: 5, hi: Some(3) }, "[5, 3]"),
            (ModelError::InvalidK { k: 0, n: 4 }, "k = 0"),
            (ModelError::EmptyTrace, "no nodes"),
            (
                ModelError::RaggedTrace {
                    at: TimeStep(3),
                    expected: 4,
                    found: 2,
                },
                "t=3",
            ),
            (ModelError::UnknownNode(NodeId(9)), "node#9"),
            (
                ModelError::InvalidOutput {
                    at: TimeStep(1),
                    reason: "missing clearly-larger node".into(),
                },
                "missing clearly-larger",
            ),
            (
                ModelError::InvalidFilterSet {
                    at: TimeStep(2),
                    reason: "overlap".into(),
                },
                "overlap",
            ),
            (
                ModelError::RoundBudgetExceeded {
                    at: TimeStep(0),
                    used: 100,
                    budget: 10,
                },
                "budget 10",
            ),
            (ModelError::ChannelClosed(NodeId(1)), "node#1"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "message `{msg}` should contain `{needle}`"
            );
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&ModelError::EmptyTrace);
    }
}
