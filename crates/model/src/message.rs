//! Wire messages exchanged between the server and the nodes.
//!
//! The model allows three physical message classes, each of unit cost:
//! node → server unicast, server → node unicast and server → all broadcast.
//! The enums below describe the *payloads*; the cost class is determined by the
//! transport primitive used in `topk-net` (and accounted by
//! [`crate::cost::CostMeter`]).
//!
//! Payload sizes respect the model's `O(log(n·Δ))`-bit bound: every variant
//! carries at most a couple of values and identifiers.

use crate::filter::{Filter, Violation};
use crate::query::QueryId;
use crate::rule::{FilterParams, NodeGroup};
use crate::types::{NodeId, Value};
use serde::{Deserialize, Serialize};

/// Predicate a node evaluates locally when asked to participate in an
/// existence-protocol round (Sect. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExistencePredicate {
    /// "Did you observe a filter violation at the current time step?"
    PendingViolation,
    /// "Is your current value strictly greater than the threshold?"
    GreaterThan(Value),
    /// "Is your current value at least the threshold?"
    AtLeast(Value),
    /// "Is your current value strictly smaller than the threshold?"
    LessThan(Value),
    /// "Is your `(value, id)` rank strictly between the two bounds?"
    ///
    /// Ranks compare by [`crate::types::value_order`]; `None` means unbounded on
    /// that side. This is the query the maximum protocol (Lemma 2.6) uses to find
    /// the largest value below an already-known rank while excluding already
    /// identified nodes — both bounds together stay within the `O(log(n·Δ))`-bit
    /// message budget.
    RankWindow {
        /// Exclusive lower bound on the rank, or `None` for no lower bound.
        above: Option<(Value, NodeId)>,
        /// Exclusive upper bound on the rank, or `None` for no upper bound.
        below: Option<(Value, NodeId)>,
    },
}

impl ExistencePredicate {
    /// Evaluates the predicate against a node's identity, current value and
    /// pending violation state.
    pub fn evaluate(
        &self,
        node: NodeId,
        value: Value,
        pending_violation: Option<Violation>,
    ) -> bool {
        use std::cmp::Ordering;
        match *self {
            ExistencePredicate::PendingViolation => pending_violation.is_some(),
            ExistencePredicate::GreaterThan(t) => value > t,
            ExistencePredicate::AtLeast(t) => value >= t,
            ExistencePredicate::LessThan(t) => value < t,
            ExistencePredicate::RankWindow { above, below } => {
                let me = (value, node);
                let above_ok = above.map_or(true, |bound| {
                    crate::types::value_order(me, bound) == Ordering::Greater
                });
                let below_ok = below.map_or(true, |bound| {
                    crate::types::value_order(me, bound) == Ordering::Less
                });
                above_ok && below_ok
            }
        }
    }
}

/// Messages sent by the server (unicast or broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerMessage {
    /// Assign an explicit filter to the receiving node (unicast).
    AssignFilter(Filter),
    /// Assign a group to the receiving node (unicast). The node's filter is then
    /// derived from the last broadcast [`FilterParams`] via
    /// [`crate::rule::filter_for`].
    AssignGroup(NodeGroup),
    /// Assign the same group to every node (broadcast). Typically followed by a
    /// handful of unicast [`ServerMessage::AssignGroup`] corrections — this is
    /// how a phase start re-partitions all `n` nodes with `O(k)` messages.
    BroadcastGroup(NodeGroup),
    /// Broadcast new filter parameters; every node re-derives its filter.
    BroadcastParams(FilterParams),
    /// Ask the receiving node to report its current value (unicast probe).
    Probe,
    /// Start round `round` of the existence protocol for the given predicate.
    /// Nodes for which the predicate holds reply independently with probability
    /// `2^round / n_active_hint` (see `topk-core::existence`).
    ExistenceRound {
        /// Round index `r = 0, 1, …, ⌈log₂ n⌉`.
        round: u32,
        /// The number of nodes `n` used in the probability `p_r = 2^r / n`.
        population: u32,
        /// The predicate deciding whether a node is active in this protocol run.
        predicate: ExistencePredicate,
    },
    /// Tell all nodes that the current existence run is over (the server heard
    /// enough); nodes reset their per-run state. Carried on the broadcast channel
    /// piggy-backed with the next payload, hence free of charge in the
    /// accounting (see `CostMeter::note_free_control`).
    EndExistenceRun,
    /// Assign a filter on behalf of a specific query (unicast, wire v4).
    ///
    /// The carried filter is the node's new *effective* filter — the
    /// intersection of the bands of every query covering the node, computed
    /// server-side — and the node applies it exactly like
    /// [`ServerMessage::AssignFilter`]. The [`QueryId`] tags the message for
    /// per-query cost attribution only; nodes keep no per-query state.
    AssignQueryFilter {
        /// The query on whose behalf the assignment is charged.
        query: QueryId,
        /// The node's new effective filter.
        filter: Filter,
    },
}

/// Messages sent by a node to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeMessage {
    /// Reply to a [`ServerMessage::Probe`] with the node's current value.
    ValueReport {
        /// Sender.
        node: NodeId,
        /// Current value of the sender.
        value: Value,
    },
    /// Spontaneous or existence-triggered report of a filter violation. Carries
    /// the violating value and the direction so the server can react without a
    /// follow-up probe.
    ViolationReport {
        /// Sender.
        node: NodeId,
        /// The value that violated the filter.
        value: Value,
        /// Violation direction.
        direction: Violation,
    },
    /// Positive answer in an existence round (the node's predicate holds and its
    /// coin flip succeeded). Carries the current value: the protocols always use
    /// the responder's value right away.
    ExistenceResponse {
        /// Sender.
        node: NodeId,
        /// Current value of the sender.
        value: Value,
    },
}

impl NodeMessage {
    /// The sender of this message.
    pub fn sender(&self) -> NodeId {
        match *self {
            NodeMessage::ValueReport { node, .. }
            | NodeMessage::ViolationReport { node, .. }
            | NodeMessage::ExistenceResponse { node, .. } => node,
        }
    }

    /// The value carried by this message.
    pub fn value(&self) -> Value {
        match *self {
            NodeMessage::ValueReport { value, .. }
            | NodeMessage::ViolationReport { value, .. }
            | NodeMessage::ExistenceResponse { value, .. } => value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_evaluation() {
        let id = NodeId(0);
        assert!(ExistencePredicate::PendingViolation.evaluate(id, 5, Some(Violation::FromBelow)));
        assert!(!ExistencePredicate::PendingViolation.evaluate(id, 5, None));
        assert!(ExistencePredicate::GreaterThan(10).evaluate(id, 11, None));
        assert!(!ExistencePredicate::GreaterThan(10).evaluate(id, 10, None));
        assert!(ExistencePredicate::AtLeast(10).evaluate(id, 10, None));
        assert!(!ExistencePredicate::AtLeast(10).evaluate(id, 9, None));
        assert!(ExistencePredicate::LessThan(10).evaluate(id, 9, None));
        assert!(!ExistencePredicate::LessThan(10).evaluate(id, 10, None));
    }

    #[test]
    fn rank_window_predicate() {
        // Window strictly between (10, node#5) and (20, node#1).
        let pred = ExistencePredicate::RankWindow {
            above: Some((10, NodeId(5))),
            below: Some((20, NodeId(1))),
        };
        // Clearly inside.
        assert!(pred.evaluate(NodeId(3), 15, None));
        // Below the lower bound.
        assert!(!pred.evaluate(NodeId(3), 9, None));
        // Above the upper bound.
        assert!(!pred.evaluate(NodeId(3), 21, None));
        // Equal value to lower bound: rank decided by id (smaller id = higher rank).
        assert!(pred.evaluate(NodeId(2), 10, None));
        assert!(!pred.evaluate(NodeId(7), 10, None));
        // Equal value to upper bound: only ids larger than 1 are below it.
        assert!(pred.evaluate(NodeId(2), 20, None));
        assert!(!pred.evaluate(NodeId(0), 20, None));
        // Unbounded window accepts everything.
        let all = ExistencePredicate::RankWindow {
            above: None,
            below: None,
        };
        assert!(all.evaluate(NodeId(9), 0, None));
    }

    #[test]
    fn node_message_accessors() {
        let m = NodeMessage::ValueReport {
            node: NodeId(3),
            value: 42,
        };
        assert_eq!(m.sender(), NodeId(3));
        assert_eq!(m.value(), 42);
        let m = NodeMessage::ViolationReport {
            node: NodeId(1),
            value: 7,
            direction: Violation::FromAbove,
        };
        assert_eq!(m.sender(), NodeId(1));
        assert_eq!(m.value(), 7);
        let m = NodeMessage::ExistenceResponse {
            node: NodeId(2),
            value: 9,
        };
        assert_eq!(m.sender(), NodeId(2));
        assert_eq!(m.value(), 9);
    }

    #[test]
    fn messages_serialize_roundtrip() {
        let msgs = vec![
            ServerMessage::AssignFilter(Filter::at_least(5)),
            ServerMessage::AssignGroup(NodeGroup::V1),
            ServerMessage::BroadcastGroup(NodeGroup::Lower),
            ServerMessage::BroadcastParams(FilterParams::Separator { lo: 1, hi: 2 }),
            ServerMessage::Probe,
            ServerMessage::ExistenceRound {
                round: 3,
                population: 16,
                predicate: ExistencePredicate::GreaterThan(7),
            },
            ServerMessage::EndExistenceRun,
            ServerMessage::AssignQueryFilter {
                query: QueryId(9),
                filter: Filter::bounded(2, 4).unwrap(),
            },
        ];
        for m in msgs {
            let s = serde_json::to_string(&m).unwrap();
            let back: ServerMessage = serde_json::from_str(&s).unwrap();
            assert_eq!(m, back);
        }
    }
}
