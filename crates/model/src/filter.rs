//! Filters — the intervals the server assigns to nodes — and filter sets.
//!
//! A *filter* for node `i` is an interval `F_i = [ℓ_i, u_i] ⊆ ℕ ∪ {∞}` such that,
//! as long as `v_i ∈ F_i`, the output `F(t)` need not change and node `i` stays
//! silent (Definition 2.1 of the paper). If a node observes a value above the
//! upper bound it *violates its filter from below* (the value crossed the bound
//! coming from below); a value below the lower bound is a *violation from above*.
//!
//! Observation 2.2 characterises valid filter sets: for every node `i` inside the
//! output and every node `j` outside it, `ℓ_i ≥ (1 − ε) · u_j` must hold.

use crate::epsilon::Epsilon;
use crate::error::ModelError;
use crate::types::{NodeId, TimeStep, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction of a filter violation.
///
/// The naming follows the paper: a node whose value grew past the *upper* bound
/// of its filter violates *from below* (it approached the bound from below); a
/// node whose value dropped under the *lower* bound violates *from above*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Violation {
    /// The observed value is larger than the filter's upper bound.
    FromBelow,
    /// The observed value is smaller than the filter's lower bound.
    FromAbove,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::FromBelow => write!(f, "from below (value exceeded upper bound)"),
            Violation::FromAbove => write!(f, "from above (value dropped under lower bound)"),
        }
    }
}

/// A filter interval `[lo, hi]` with an optionally unbounded upper end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Filter {
    lo: Value,
    /// `None` encodes `∞`.
    hi: Option<Value>,
}

impl Filter {
    /// The all-embracing filter `[0, ∞)`; a node with this filter never reports.
    pub const FULL: Filter = Filter { lo: 0, hi: None };

    /// The empty filter `[1, 0]`: no value lies inside it, so a node holding it
    /// reports at every observation. It arises as the intersection of disjoint
    /// per-query bands (see [`Filter::intersect`]) and is the canonical
    /// representation of every empty interval — [`Filter::bounded`] still
    /// rejects constructing one directly.
    pub const EMPTY: Filter = Filter { lo: 1, hi: Some(0) };

    /// Creates the bounded filter `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyFilter`] if `lo > hi`.
    pub fn bounded(lo: Value, hi: Value) -> Result<Filter, ModelError> {
        if lo > hi {
            return Err(ModelError::EmptyFilter { lo, hi: Some(hi) });
        }
        Ok(Filter { lo, hi: Some(hi) })
    }

    /// Creates the upper-unbounded filter `[lo, ∞)`.
    pub fn at_least(lo: Value) -> Filter {
        Filter { lo, hi: None }
    }

    /// Creates the filter `[0, hi]`.
    pub fn at_most(hi: Value) -> Filter {
        Filter {
            lo: 0,
            hi: Some(hi),
        }
    }

    /// Lower bound `ℓ`.
    #[inline]
    pub fn lo(&self) -> Value {
        self.lo
    }

    /// Upper bound `u`, or `None` for `∞`.
    #[inline]
    pub fn hi(&self) -> Option<Value> {
        self.hi
    }

    /// Upper bound with `∞` mapped to [`Value::MAX`] (useful for ordering and
    /// reporting; never feed the result back into neighbourhood arithmetic).
    #[inline]
    pub fn hi_or_max(&self) -> Value {
        self.hi.unwrap_or(Value::MAX)
    }

    /// Whether the filter is bounded above.
    #[inline]
    pub fn is_bounded(&self) -> bool {
        self.hi.is_some()
    }

    /// Whether the filter is empty (contains no value at all).
    #[inline]
    pub fn is_empty(&self) -> bool {
        matches!(self.hi, Some(hi) if self.lo > hi)
    }

    /// The intersection of two filters: `[max(ℓ, ℓ'), min(u, u')]`.
    ///
    /// This is how the server combines the bands several queries assign to the
    /// same node into one *effective* filter — the node stays silent exactly
    /// while its value satisfies every query's band. Disjoint bands intersect
    /// to [`Filter::EMPTY`] (canonically), which every value violates.
    ///
    /// ```
    /// use topk_model::Filter;
    ///
    /// let a = Filter::bounded(10, 30).unwrap();
    /// let b = Filter::at_least(20);
    /// assert_eq!(a.intersect(&b), Filter::bounded(20, 30).unwrap());
    /// assert!(a.intersect(&Filter::at_least(31)).is_empty());
    /// ```
    #[inline]
    pub fn intersect(&self, other: &Filter) -> Filter {
        let lo = self.lo.max(other.lo);
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        if matches!(hi, Some(hi) if lo > hi) {
            Filter::EMPTY
        } else {
            Filter { lo, hi }
        }
    }

    /// Whether `v` lies inside the filter.
    #[inline]
    pub fn contains(&self, v: Value) -> bool {
        v >= self.lo && self.hi.map_or(true, |hi| v <= hi)
    }

    /// Checks `v` against the filter and reports the violation direction, if any.
    ///
    /// This is the Definition 2.1 trigger: a node stays silent while its
    /// observed value satisfies `check(v) == None` and must report otherwise.
    ///
    /// ```
    /// use topk_model::{Filter, Violation};
    ///
    /// let f = Filter::bounded(10, 20).unwrap();
    /// assert_eq!(f.check(15), None); // inside: the node stays silent
    /// assert_eq!(f.check(25), Some(Violation::FromBelow)); // crossed the upper bound
    /// assert_eq!(f.check(5), Some(Violation::FromAbove)); // dropped under the lower bound
    /// assert_eq!(Filter::at_least(7).check(u64::MAX), None); // unbounded above
    /// ```
    #[inline]
    pub fn check(&self, v: Value) -> Option<Violation> {
        Filter::check_parts(self.lo, self.hi, v)
    }

    /// [`Filter::check`] on a decomposed `(lo, hi)` pair (`None` = `∞`).
    ///
    /// The single definition of the violation semantics: callers that store
    /// filters column-wise (see [`crate::soa::NodeStateSoA`]) check against the
    /// raw columns without reassembling a `Filter`, and cannot diverge from it.
    #[inline]
    pub fn check_parts(lo: Value, hi: Option<Value>, v: Value) -> Option<Violation> {
        if v < lo {
            Some(Violation::FromAbove)
        } else if matches!(hi, Some(hi) if v > hi) {
            Some(Violation::FromBelow)
        } else {
            None
        }
    }

    /// Whether the pair `(self, other)` satisfies the overlap condition of
    /// Observation 2.2, with `self` assigned to a node *inside* the output and
    /// `other` to a node *outside* it: `ℓ_self ≥ (1 − ε) · u_other`.
    ///
    /// An unbounded `other` can never be compatible (its values may grow
    /// arbitrarily large while `self`'s node may stay put).
    pub fn compatible_above(&self, other: &Filter, eps: Epsilon) -> bool {
        match other.hi {
            Some(u_other) => eps.ge_one_minus_eps_times(self.lo, u_other),
            None => false,
        }
    }

    /// Exact-variant compatibility: `ℓ_self ≥ u_other` (no ε slack). Used when
    /// validating filter sets for the exact top-k problem.
    pub fn compatible_above_exact(&self, other: &Filter) -> bool {
        match other.hi {
            Some(u_other) => self.lo >= u_other,
            None => false,
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hi {
            Some(hi) => write!(f, "[{}, {}]", self.lo, hi),
            None => write!(f, "[{}, ∞)", self.lo),
        }
    }
}

impl Default for Filter {
    fn default() -> Self {
        Filter::FULL
    }
}

/// A complete assignment of filters to all `n` nodes together with validation
/// helpers (Definition 2.1 / Observation 2.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterSet {
    filters: Vec<Filter>,
}

impl FilterSet {
    /// Creates a filter set of `n` all-embracing filters.
    pub fn full(n: usize) -> FilterSet {
        FilterSet {
            filters: vec![Filter::FULL; n],
        }
    }

    /// Creates a filter set from an explicit vector (one filter per node).
    pub fn from_vec(filters: Vec<Filter>) -> FilterSet {
        FilterSet { filters }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Whether the set is empty (zero nodes).
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// The filter currently assigned to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn get(&self, node: NodeId) -> Filter {
        self.filters[node.index()]
    }

    /// Replaces the filter of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set(&mut self, node: NodeId, filter: Filter) {
        self.filters[node.index()] = filter;
    }

    /// Iterates over `(node, filter)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Filter)> + '_ {
        self.filters
            .iter()
            .enumerate()
            .map(|(i, f)| (NodeId(i), *f))
    }

    /// Checks Definition 2.1 for the current values: every node's value must lie
    /// inside its filter.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFilterSet`] naming the first offending node.
    pub fn check_contains_values(&self, values: &[Value], at: TimeStep) -> Result<(), ModelError> {
        for (i, (&v, f)) in values.iter().zip(self.filters.iter()).enumerate() {
            if !f.contains(v) {
                return Err(ModelError::InvalidFilterSet {
                    at,
                    reason: format!("node#{i} holds value {v} outside its filter {f}"),
                });
            }
        }
        Ok(())
    }

    /// Checks the pairwise overlap condition of Observation 2.2 for the
    /// ε-approximate problem: for every node `i ∈ output` and `j ∉ output`,
    /// `ℓ_i ≥ (1 − ε) · u_j`.
    ///
    /// The check runs in `O(n)` by comparing the *minimum* lower bound inside the
    /// output with the *maximum* upper bound outside it, which is equivalent to
    /// the quadratic pairwise condition.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFilterSet`] describing the violated pair.
    pub fn check_separation(
        &self,
        output: &[NodeId],
        eps: Epsilon,
        at: TimeStep,
    ) -> Result<(), ModelError> {
        let in_output = membership(self.len(), output);
        let min_inside = self
            .iter()
            .filter(|(id, _)| in_output[id.index()])
            .min_by_key(|(_, f)| f.lo());
        let max_outside = self
            .iter()
            .filter(|(id, _)| !in_output[id.index()])
            .max_by_key(|(_, f)| f.hi_or_max());
        let (Some((i, fi)), Some((j, fj))) = (min_inside, max_outside) else {
            return Ok(()); // no pair to compare
        };
        if !fi.compatible_above(&fj, eps) {
            return Err(ModelError::InvalidFilterSet {
                at,
                reason: format!(
                    "filters of {i} (inside, {fi}) and {j} (outside, {fj}) violate ℓ_i ≥ (1-ε)·u_j for ε = {eps}"
                ),
            });
        }
        Ok(())
    }

    /// Exact-problem analogue of [`FilterSet::check_separation`]: requires
    /// `ℓ_i ≥ u_j` for every inside/outside pair.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFilterSet`] describing the violated pair.
    pub fn check_separation_exact(
        &self,
        output: &[NodeId],
        at: TimeStep,
    ) -> Result<(), ModelError> {
        let in_output = membership(self.len(), output);
        let min_inside = self
            .iter()
            .filter(|(id, _)| in_output[id.index()])
            .min_by_key(|(_, f)| f.lo());
        let max_outside = self
            .iter()
            .filter(|(id, _)| !in_output[id.index()])
            .max_by_key(|(_, f)| f.hi_or_max());
        let (Some((i, fi)), Some((j, fj))) = (min_inside, max_outside) else {
            return Ok(());
        };
        if !fi.compatible_above_exact(&fj) {
            return Err(ModelError::InvalidFilterSet {
                at,
                reason: format!(
                    "filters of {i} (inside, {fi}) and {j} (outside, {fj}) violate ℓ_i ≥ u_j"
                ),
            });
        }
        Ok(())
    }
}

fn membership(n: usize, output: &[NodeId]) -> Vec<bool> {
    let mut m = vec![false; n];
    for id in output {
        if id.index() < n {
            m[id.index()] = true;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bounded_rejects_empty_interval() {
        assert!(Filter::bounded(5, 4).is_err());
        assert!(Filter::bounded(5, 5).is_ok());
    }

    #[test]
    fn containment_and_violations() {
        let f = Filter::bounded(10, 20).unwrap();
        assert!(f.contains(10));
        assert!(f.contains(20));
        assert!(!f.contains(9));
        assert!(!f.contains(21));
        assert_eq!(f.check(15), None);
        assert_eq!(f.check(21), Some(Violation::FromBelow));
        assert_eq!(f.check(9), Some(Violation::FromAbove));

        let g = Filter::at_least(7);
        assert!(g.contains(Value::MAX));
        assert_eq!(g.check(6), Some(Violation::FromAbove));
        assert_eq!(g.check(7), None);

        let h = Filter::at_most(7);
        assert!(h.contains(0));
        assert_eq!(h.check(8), Some(Violation::FromBelow));
    }

    #[test]
    fn full_filter_never_violates() {
        assert_eq!(Filter::FULL.check(0), None);
        assert_eq!(Filter::FULL.check(Value::MAX), None);
        assert_eq!(Filter::default(), Filter::FULL);
    }

    #[test]
    fn empty_filter_violates_everything() {
        assert!(Filter::EMPTY.is_empty());
        assert!(!Filter::FULL.is_empty());
        assert!(!Filter::bounded(3, 3).unwrap().is_empty());
        assert!(!Filter::EMPTY.contains(0));
        assert!(!Filter::EMPTY.contains(Value::MAX));
        assert_eq!(Filter::EMPTY.check(0), Some(Violation::FromAbove));
        assert_eq!(Filter::EMPTY.check(1), Some(Violation::FromBelow));
        assert_eq!(Filter::EMPTY.check(Value::MAX), Some(Violation::FromBelow));
    }

    #[test]
    fn intersection_semantics() {
        let a = Filter::bounded(10, 30).unwrap();
        let b = Filter::bounded(20, 40).unwrap();
        assert_eq!(a.intersect(&b), Filter::bounded(20, 30).unwrap());
        assert_eq!(b.intersect(&a), Filter::bounded(20, 30).unwrap());
        assert_eq!(a.intersect(&Filter::FULL), a);
        assert_eq!(Filter::FULL.intersect(&Filter::FULL), Filter::FULL);
        assert_eq!(
            Filter::at_least(5).intersect(&Filter::at_most(7)),
            Filter::bounded(5, 7).unwrap()
        );
        // Disjoint bands collapse to the canonical empty filter.
        let lowband = Filter::at_most(10);
        let highband = Filter::at_least(20);
        assert_eq!(lowband.intersect(&highband), Filter::EMPTY);
        // Empty absorbs everything.
        assert_eq!(Filter::EMPTY.intersect(&Filter::FULL), Filter::EMPTY);
        assert_eq!(a.intersect(&Filter::EMPTY), Filter::EMPTY);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Filter::bounded(1, 2).unwrap().to_string(), "[1, 2]");
        assert_eq!(Filter::at_least(3).to_string(), "[3, ∞)");
        assert!(Violation::FromBelow.to_string().contains("below"));
        assert!(Violation::FromAbove.to_string().contains("above"));
    }

    #[test]
    fn compatibility_with_eps() {
        let eps = Epsilon::new(1, 10).unwrap();
        let upper = Filter::at_least(90);
        let lower = Filter::at_most(100);
        assert!(upper.compatible_above(&lower, eps));
        let upper_bad = Filter::at_least(89);
        assert!(!upper_bad.compatible_above(&lower, eps));
        // Unbounded outside filter is never compatible.
        assert!(!upper.compatible_above(&Filter::FULL, eps));
        // Exact compatibility.
        assert!(Filter::at_least(100).compatible_above_exact(&lower));
        assert!(!Filter::at_least(99).compatible_above_exact(&lower));
    }

    #[test]
    fn filter_set_value_containment() {
        let mut fs = FilterSet::full(3);
        fs.set(NodeId(1), Filter::bounded(5, 10).unwrap());
        assert!(fs.check_contains_values(&[0, 7, 100], TimeStep(0)).is_ok());
        let err = fs
            .check_contains_values(&[0, 11, 100], TimeStep(3))
            .unwrap_err();
        match err {
            ModelError::InvalidFilterSet { at, reason } => {
                assert_eq!(at, TimeStep(3));
                assert!(reason.contains("node#1"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn filter_set_separation_eps() {
        let eps = Epsilon::HALF;
        let mut fs = FilterSet::full(4);
        // Nodes 0,1 inside with [50, ∞); nodes 2,3 outside with [0, 100].
        fs.set(NodeId(0), Filter::at_least(50));
        fs.set(NodeId(1), Filter::at_least(60));
        fs.set(NodeId(2), Filter::at_most(100));
        fs.set(NodeId(3), Filter::at_most(80));
        let output = [NodeId(0), NodeId(1)];
        assert!(fs.check_separation(&output, eps, TimeStep(0)).is_ok());
        // Exact separation fails (50 < 100).
        assert!(fs.check_separation_exact(&output, TimeStep(0)).is_err());
        // Tighten ε: for ε = 1/10 we would need ℓ ≥ 90 > 50.
        let tight = Epsilon::new(1, 10).unwrap();
        assert!(fs.check_separation(&output, tight, TimeStep(0)).is_err());
    }

    #[test]
    fn filter_set_separation_trivial_cases() {
        let eps = Epsilon::HALF;
        let fs = FilterSet::full(3);
        // Everything inside (or everything outside): no pair to compare.
        assert!(fs
            .check_separation(&[NodeId(0), NodeId(1), NodeId(2)], eps, TimeStep(0))
            .is_ok());
        assert!(fs.check_separation(&[], eps, TimeStep(0)).is_ok());
        assert!(FilterSet::full(0).is_empty());
    }

    #[test]
    fn filter_set_accessors() {
        let mut fs = FilterSet::from_vec(vec![Filter::FULL, Filter::at_least(3)]);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.get(NodeId(1)), Filter::at_least(3));
        fs.set(NodeId(0), Filter::at_most(9));
        let collected: Vec<_> = fs.iter().collect();
        assert_eq!(collected[0], (NodeId(0), Filter::at_most(9)));
        assert_eq!(collected[1], (NodeId(1), Filter::at_least(3)));
    }

    proptest! {
        #[test]
        fn check_agrees_with_contains(lo in 0u64..1000, len in 0u64..1000, v in 0u64..3000) {
            let f = Filter::bounded(lo, lo + len).unwrap();
            prop_assert_eq!(f.check(v).is_none(), f.contains(v));
        }

        #[test]
        fn violation_direction_is_consistent(lo in 0u64..1000, len in 0u64..1000, v in 0u64..3000) {
            let f = Filter::bounded(lo, lo + len).unwrap();
            match f.check(v) {
                Some(Violation::FromAbove) => prop_assert!(v < f.lo()),
                Some(Violation::FromBelow) => prop_assert!(v > f.hi().unwrap()),
                None => prop_assert!(f.contains(v)),
            }
        }

        /// The O(n) min/max separation check must agree with the quadratic
        /// pairwise definition of Observation 2.2.
        #[test]
        fn separation_check_matches_pairwise_definition(
            bounds in proptest::collection::vec((0u64..100, 0u64..100), 2..8),
            mask in proptest::collection::vec(proptest::bool::ANY, 2..8),
        ) {
            let n = bounds.len().min(mask.len());
            let filters: Vec<Filter> = bounds[..n]
                .iter()
                .map(|&(lo, len)| Filter::bounded(lo, lo + len).unwrap())
                .collect();
            let fs = FilterSet::from_vec(filters.clone());
            let output: Vec<NodeId> = (0..n).filter(|&i| mask[i]).map(NodeId).collect();
            let eps = Epsilon::new(1, 4).unwrap();
            let fast = fs.check_separation(&output, eps, TimeStep(0)).is_ok();
            let mut slow = true;
            for i in 0..n {
                for j in 0..n {
                    if mask[i] && !mask[j] {
                        slow &= filters[i].compatible_above(&filters[j], eps);
                    }
                }
            }
            prop_assert_eq!(fast, slow);
        }
    }
}
