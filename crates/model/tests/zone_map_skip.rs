//! The zone-map skip is a pure elision: it never masks a real transition.
//!
//! `NodeStateSoA`'s dense bulk passes skip a whole 64-node chunk when the
//! per-chunk zone map proves no flag can flip (no pending violation, every
//! new value inside the chunk-wide `[lo_max, hi_min]` band). The soundness
//! argument lives on the `chunk_dirty` field in `soa.rs`: stale bounds after
//! a filter write are always the *pre-widening* (tighter) ones, so the skip
//! test can only be conservative. This battery pins the claim differentially:
//! a skip-enabled state and a skip-disabled twin (same API, every chunk takes
//! the full re-derivation pass) are driven through random interleaved filter
//! and value traffic and must report identical transitions, identical change
//! counts, and identical observable state after every step — under
//! dense-biased, quiet-biased, tracked and deferred+refresh delivery alike.

use proptest::prelude::*;
use topk_model::prelude::*;
use topk_model::soa::NodeStateSoA;

/// Maximum population the raw rows are generated for; the driver truncates
/// to the case's actual `n`.
const N_MAX: usize = 200;

/// One step of interleaved traffic, already shaped for population `n`.
struct Step {
    /// `(node, filter)` assignments applied before the row.
    filters: Vec<(usize, Filter)>,
    /// The observation row (`n` values).
    row: Vec<Value>,
    /// Which bulk delivery path carries the row (0 = dense-biased, 1 =
    /// quiet-biased, 2 = tracked, 3 = deferred + `refresh_pending_bulk`).
    path: u8,
}

/// Shapes one raw generated step for population `n`. Values and filter
/// bounds share the 0..50 range so violations and returns-to-band are both
/// common; `width >= 50` becomes the one-sided `[lo, ∞)` filter, covering
/// widening, narrowing and unbounding alike.
/// One step as the stand-in proptest strategies generate it, before
/// [`shape`] folds indices into range and widths into `Filter`s.
type RawStep = (Vec<(usize, u64, u64)>, Vec<u64>, u8);

fn shape(raw: &RawStep, n: usize) -> Step {
    let (filters, row, path) = raw;
    Step {
        filters: filters
            .iter()
            .map(|&(i, lo, width)| {
                let f = if width >= 50 {
                    Filter::at_least(lo)
                } else {
                    Filter::bounded(lo, lo + width).expect("lo <= lo + width")
                };
                (i % n, f)
            })
            .collect(),
        row: row[..n].to_vec(),
        path: *path,
    }
}

/// Applies one step to a state, returning `(changed, transitions)`.
fn apply(s: &mut NodeStateSoA, step: &Step) -> (usize, Vec<u32>) {
    for &(i, f) in &step.filters {
        s.set_filter(i, f);
    }
    let mut transitions = Vec::new();
    let changed = match step.path {
        0 => s.advance_row(&step.row, &mut transitions, true),
        1 => s.advance_row(&step.row, &mut transitions, false),
        2 => {
            let mut changed_ids = Vec::new();
            s.advance_row_tracked(&step.row, &mut transitions, &mut changed_ids)
        }
        _ => {
            let mut changed = 0;
            for (i, &v) in step.row.iter().enumerate() {
                if s.value(i) != v {
                    changed += 1;
                }
                s.set_value_deferred(i, v);
            }
            s.refresh_pending_bulk(&mut transitions);
            changed
        }
    };
    (changed, transitions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn skip_enabled_and_disabled_states_stay_identical(
        // Sizes straddle the CHUNK = 64 boundary: sub-chunk, around-chunk
        // (exact and ragged tail), multi-chunk.
        n_band in 0usize..3,
        n_off in 0usize..97,
        raw_steps in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..N_MAX, 0u64..40, 0u64..60), 0..8),
                proptest::collection::vec(0u64..50, N_MAX..N_MAX + 1),
                0u8..4,
            ),
            1..16,
        ),
    ) {
        let n = match n_band {
            0 => 1 + n_off % 7,
            1 => 60 + n_off % 10,
            _ => 120 + n_off % 80,
        };
        let mut skip = NodeStateSoA::new(n);
        let mut twin = NodeStateSoA::new(n);
        twin.set_zone_map_enabled(false);
        for (t, raw) in raw_steps.iter().enumerate() {
            let step = shape(raw, n);
            let (changed_a, trans_a) = apply(&mut skip, &step);
            let (changed_b, trans_b) = apply(&mut twin, &step);
            prop_assert_eq!(
                changed_a, changed_b,
                "step {}: skip path disagrees on the change count", t
            );
            prop_assert_eq!(
                trans_a, trans_b,
                "step {}: skip path masked or invented a transition", t
            );
            prop_assert_eq!(&skip, &twin, "step {}: observable state diverged", t);
            for i in 0..n {
                prop_assert_eq!(
                    skip.pending(i),
                    skip.filter(i).check(skip.value(i)),
                    "step {}: node {} pending flag violates the invariant", t, i
                );
            }
        }
    }
}
