//! Cost summary of an offline baseline run.

use crate::phase::PhaseDecomposition;
use serde::{Deserialize, Serialize};
use topk_model::prelude::*;

/// Message-count bounds for the optimal filter-based offline algorithm on one
/// trace, derived from a [`PhaseDecomposition`].
///
/// * `lower_bound` — no filter-based offline algorithm can use fewer messages
///   (one per phase: the decomposition is the minimum-cardinality partition into
///   silent intervals, and entering each interval requires at least one filter
///   update; the first interval requires the initial assignment).
/// * `upper_bound` — the explicit two-filter strategy (Proposition 2.4 /
///   Theorem 5.1 proof) achieves this: `k` unicasts plus one broadcast per phase.
///
/// Competitive ratios in EXPERIMENTS.md are reported against the *lower* bound,
/// i.e. they are conservative (an upper estimate of the true ratio).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OfflineCost {
    /// Number of silent phases in the optimal decomposition.
    pub phases: u64,
    /// Lower bound on OPT's message count.
    pub lower_bound: u64,
    /// Message count of the explicit two-filter realisation.
    pub upper_bound: u64,
    /// `k` used by the decomposition.
    pub k: usize,
    /// The offline algorithm's error (`None` = exact adversary).
    pub eps: Option<Epsilon>,
}

impl OfflineCost {
    /// Summarises a phase decomposition.
    pub fn from_decomposition(d: &PhaseDecomposition) -> OfflineCost {
        OfflineCost {
            phases: d.len() as u64,
            lower_bound: d.opt_lower_bound(),
            upper_bound: d.opt_upper_bound(),
            k: d.k,
            eps: d.eps,
        }
    }

    /// Competitive ratio of an online algorithm that used `online_messages`
    /// messages, measured against the conservative OPT lower bound.
    pub fn competitive_ratio(&self, online_messages: u64) -> f64 {
        online_messages as f64 / self.lower_bound.max(1) as f64
    }

    /// Competitive ratio measured against the explicit two-filter realisation
    /// (a lower estimate of the true ratio).
    pub fn optimistic_ratio(&self, online_messages: u64) -> f64 {
        online_messages as f64 / self.upper_bound.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::decompose;
    use topk_gen::Trace;

    #[test]
    fn cost_summary_matches_decomposition() {
        let rows = vec![vec![100, 90], vec![90, 100], vec![100, 90]];
        let trace = Trace::new(rows).unwrap();
        let d = decompose(&trace, 1, None).unwrap();
        let cost = OfflineCost::from_decomposition(&d);
        assert_eq!(cost.phases, 3);
        assert_eq!(cost.lower_bound, 3);
        assert_eq!(cost.upper_bound, 6);
        assert_eq!(cost.k, 1);
        assert_eq!(cost.eps, None);
    }

    #[test]
    fn ratios_divide_by_the_right_bounds() {
        let cost = OfflineCost {
            phases: 4,
            lower_bound: 4,
            upper_bound: 12,
            k: 2,
            eps: Some(Epsilon::HALF),
        };
        assert!((cost.competitive_ratio(40) - 10.0).abs() < 1e-9);
        assert!((cost.optimistic_ratio(36) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_handles_zero_lower_bound() {
        let cost = OfflineCost {
            phases: 0,
            lower_bound: 0,
            upper_bound: 0,
            k: 1,
            eps: None,
        };
        assert_eq!(cost.competitive_ratio(5), 5.0);
        assert_eq!(cost.optimistic_ratio(5), 5.0);
    }
}
