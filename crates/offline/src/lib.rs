//! # topk-offline
//!
//! Offline (OPT) baselines for competitive-ratio measurements.
//!
//! The paper's adversaries are *filter-based offline algorithms*: they see the
//! whole input in advance, must output a valid (exact or ε-approximate) top-k set
//! at every time step, may only stay silent while every node's value remains
//! inside its assigned filter, and pay one message per filter update. The
//! competitive ratio of an online algorithm is its message count divided by
//! OPT's.
//!
//! By Proposition 2.4 an optimal offline algorithm needs only two distinct
//! filters at any time, and by Lemma 2.5 it can keep the same filters throughout
//! an interval `[t, t']` if and only if it can pick an output `F*` with
//! `MIN_{F*}(t, t') ≥ (1 − ε) · MAX_{\bar F*}(t, t')` (with `ε = 0` for the exact
//! problem). The offline solvers below therefore perform a *greedy phase
//! decomposition*: starting at `t`, extend the phase as long as some valid output
//! set satisfies the condition above; when no output survives, close the phase,
//! charge `k + 1` messages (k unicast upper filters plus one broadcast lower
//! filter — exactly the assignment used in the proof of Theorem 5.1), and start a
//! new phase. Greedily extending phases maximises phase length and therefore
//! minimises the number of phase boundaries; the number of boundaries is a lower
//! bound on the number of filter reassignments any filter-based offline algorithm
//! needs, so `phases · (k + 1)` brackets OPT within a constant factor and
//! `phases` itself is the lower bound used for the competitive ratios reported in
//! EXPERIMENTS.md.
//!
//! The crate provides:
//!
//! * [`ExactOfflineOpt`] — phase decomposition for the exact top-k problem,
//! * [`ApproxOfflineOpt`] — phase decomposition for ε-top-k (the `ε'`-adversary of
//!   Sect. 5; instantiate with `ε/2` for Corollary 5.9-style comparisons),
//! * [`OfflineCost`] — the resulting phase boundaries and message-count bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod cost;
pub mod exact;
pub mod phase;

pub use approx::ApproxOfflineOpt;
pub use cost::OfflineCost;
pub use exact::ExactOfflineOpt;
pub use phase::{Phase, PhaseDecomposition, PhaseSolver};
