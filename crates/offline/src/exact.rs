//! Offline baseline for the *exact* Top-k-Position Monitoring problem.
//!
//! This is the adversary of Sect. 4 of the paper (Theorem 4.5): an offline
//! filter-based algorithm that must output the exact top-k set at every time
//! step. Its minimum communication on a trace is obtained from the greedy phase
//! decomposition with `ε = 0` (see [`crate::phase`]).

use crate::cost::OfflineCost;
use crate::phase::{decompose, PhaseDecomposition, PhaseSolver};
use topk_gen::Trace;
use topk_model::prelude::*;
use topk_model::ModelError;

/// Optimal filter-based offline algorithm for the exact problem.
#[derive(Debug, Clone, Copy)]
pub struct ExactOfflineOpt {
    k: usize,
}

impl ExactOfflineOpt {
    /// Creates the baseline for parameter `k`.
    pub fn new(k: usize) -> ExactOfflineOpt {
        ExactOfflineOpt { k }
    }

    /// The monitored `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Computes the optimal phase decomposition of `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidK`] if `k ∉ 1..n`.
    pub fn decompose(&self, trace: &Trace) -> Result<PhaseDecomposition, ModelError> {
        decompose(trace, self.k, None)
    }

    /// Computes the message-count bounds for OPT on `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidK`] if `k ∉ 1..n`.
    pub fn cost(&self, trace: &Trace) -> Result<OfflineCost, ModelError> {
        Ok(OfflineCost::from_decomposition(&self.decompose(trace)?))
    }

    /// Like [`ExactOfflineOpt::cost`], but reuses the buffers of an existing
    /// [`PhaseSolver`] — the entry point for batch evaluations (the campaign
    /// grid runs thousands of OPT computations per report).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidK`] if `k ∉ 1..n`.
    pub fn cost_with(
        &self,
        solver: &mut PhaseSolver,
        trace: &Trace,
    ) -> Result<OfflineCost, ModelError> {
        Ok(OfflineCost::from_decomposition(
            &solver.decompose(trace, self.k, None)?,
        ))
    }

    /// Convenience: the exact top-k set (the unique valid exact output) at one
    /// time step of the trace.
    pub fn output_at(&self, trace: &Trace, t: TimeStep) -> Vec<NodeId> {
        // The ε below is irrelevant for the exact top-k set; any valid value works.
        TopKView::new(trace.row(t), self.k, Epsilon::HALF).exact_top_k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_trace_needs_one_phase() {
        let trace = Trace::from_fn(30, 4, |_, i| (100 - 10 * i) as Value);
        let opt = ExactOfflineOpt::new(2);
        assert_eq!(opt.k(), 2);
        let cost = opt.cost(&trace).unwrap();
        assert_eq!(cost.phases, 1);
        assert_eq!(cost.upper_bound, 3);
    }

    #[test]
    fn leadership_swaps_cost_messages() {
        // Node 0 and node 1 swap the lead every step; the exact OPT must
        // communicate every step.
        let trace = Trace::from_fn(10, 3, |t, i| match i {
            0 => {
                if t % 2 == 0 {
                    100
                } else {
                    80
                }
            }
            1 => {
                if t % 2 == 0 {
                    80
                } else {
                    100
                }
            }
            _ => 10,
        });
        let opt = ExactOfflineOpt::new(1);
        let d = opt.decompose(&trace).unwrap();
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn output_at_returns_exact_top_k() {
        let trace = Trace::new(vec![vec![5, 50, 20]]).unwrap();
        let opt = ExactOfflineOpt::new(2);
        assert_eq!(
            opt.output_at(&trace, TimeStep(0)),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn invalid_k_propagates() {
        let trace = Trace::from_fn(2, 2, |_, i| i as Value);
        assert!(ExactOfflineOpt::new(2).cost(&trace).is_err());
    }
}
