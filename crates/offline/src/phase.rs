//! Greedy phase decomposition — the engine behind both offline baselines.
//!
//! A *phase* is a maximal interval `[t, t']` during which a filter-based offline
//! algorithm can stay completely silent. By Proposition 2.4 such an algorithm
//! needs only two filters, `F₁ = [ℓ*, ∞)` for its output `F*` and `F₂ = [0, u*]`
//! for the rest, and by (the ε-generalised) Lemma 2.5 staying silent over
//! `[t, t']` is possible iff
//!
//! ```text
//!   ∃ F* ⊆ nodes, |F*| = k :  MIN_{F*}(t, t') ≥ (1 − ε') · MAX_{rest}(t, t')
//! ```
//!
//! (with `ε' = 0` for the exact problem). The condition is closed under
//! shortening the interval, so the decomposition with the fewest phases is found
//! greedily: extend the current phase while some witness set `F*` exists, close
//! it when none does. The number of phases minus one lower-bounds the number of
//! filter updates *any* filter-based offline algorithm needs, and `k + 1` messages
//! per phase (k unicast upper filters plus one broadcast) suffice to realise the
//! decomposition — these are the two bounds [`crate::OfflineCost`] reports.
//!
//! ## Solver cost
//!
//! [`PhaseSolver`] owns every buffer the greedy extension needs (interval
//! min/max columns, the two node orderings, the membership scratch), so a
//! full campaign grid — thousands of OPT evaluations, populations up to 10⁵ —
//! allocates a handful of vectors once per population size instead of
//! `O(k · steps)` fresh vectors per trace. The orderings are kept *sorted
//! between extensions*: interval minima and maxima change monotonically, so the
//! re-sort after an extension runs on an almost-sorted sequence where the
//! stable (run-adaptive) sort is close to linear, and the witness search per
//! candidate complement position inspects only `O(k)` order entries instead of
//! sorting an `O(n)` suffix. The result is `O(n)`-ish per extension instead of
//! the naive `O(k · n log n)` — the difference between minutes and seconds on
//! the campaign's `n = 10⁵` cells.

use serde::{Deserialize, Serialize};
use topk_gen::Trace;
use topk_model::prelude::*;
use topk_model::ModelError;

/// One silent interval of the offline algorithm together with a witness output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// First time step of the phase (inclusive).
    pub start: TimeStep,
    /// Last time step of the phase (inclusive).
    pub end: TimeStep,
    /// A witness output set `F*` that is valid throughout the phase.
    pub output: Vec<NodeId>,
    /// The filter boundary the witness can use: `F₁ = [lower_filter, ∞)`.
    pub lower_filter: Value,
    /// The filter boundary the witness can use: `F₂ = [0, upper_filter]`.
    pub upper_filter: Value,
}

impl Phase {
    /// Number of time steps covered by the phase.
    pub fn len(&self) -> u64 {
        self.end.raw() - self.start.raw() + 1
    }

    /// Whether the phase is empty (never true for phases produced by the solver).
    pub fn is_empty(&self) -> bool {
        self.end < self.start
    }
}

/// Result of decomposing a trace into silent phases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseDecomposition {
    /// The phases in chronological order; they tile the trace exactly.
    pub phases: Vec<Phase>,
    /// `k` used for the decomposition.
    pub k: usize,
    /// The offline algorithm's error (`None` = exact problem).
    pub eps: Option<Epsilon>,
}

impl PhaseDecomposition {
    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether there are no phases (only possible for the empty trace, which the
    /// solver rejects).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Lower bound on the number of messages any filter-based offline algorithm
    /// needs on this trace: one initial filter assignment plus one update per
    /// additional phase.
    pub fn opt_lower_bound(&self) -> u64 {
        self.phases.len() as u64
    }

    /// Cost of the explicit two-filter offline strategy from the proof of
    /// Theorem 5.1: `k` unicast filters plus one broadcast per phase.
    pub fn opt_upper_bound(&self) -> u64 {
        (self.phases.len() as u64) * (self.k as u64 + 1)
    }
}

/// Reusable greedy-decomposition solver.
///
/// Create one and feed it any number of traces (of any population size — the
/// buffers grow to the largest `n` seen and stay allocated). One solver serves
/// one thread; the campaign runner keeps a single instance for its whole grid.
#[derive(Debug, Default)]
pub struct PhaseSolver {
    /// Per-node interval minima over the current candidate phase.
    mins: Vec<Value>,
    /// Per-node interval maxima over the current candidate phase.
    maxs: Vec<Value>,
    /// Snapshot of `mins` before the speculative extension.
    saved_mins: Vec<Value>,
    /// Snapshot of `maxs` before the speculative extension.
    saved_maxs: Vec<Value>,
    /// Node indices ordered by (interval max desc, id asc).
    by_max: Vec<usize>,
    /// Node indices ordered by (interval min desc, id asc).
    by_min: Vec<usize>,
    /// `pos_in_by_max[i]` = position of node `i` in `by_max`.
    pos_in_by_max: Vec<usize>,
    /// Witness membership scratch.
    member: Vec<bool>,
}

impl PhaseSolver {
    /// Creates a solver with empty buffers.
    pub fn new() -> PhaseSolver {
        PhaseSolver::default()
    }

    /// Greedy phase decomposition of `trace` for parameter `k` and offline
    /// error `eps` (`None` for the exact problem), reusing this solver's
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidK`] if `k` is not in `1..n`.
    pub fn decompose(
        &mut self,
        trace: &Trace,
        k: usize,
        eps: Option<Epsilon>,
    ) -> Result<PhaseDecomposition, ModelError> {
        let n = trace.n();
        if k == 0 || k >= n {
            return Err(ModelError::InvalidK { k, n });
        }
        let mut phases = Vec::new();
        let mut start = 0usize;
        while start < trace.steps() {
            let row = trace.row(TimeStep(start as u64));
            self.reset_interval(row);
            let mut witness = self
                .feasible_witness(k, eps)
                .expect("a single time step always admits its exact top-k as witness");
            let mut end = start;
            while end + 1 < trace.steps() {
                let next = trace.row(TimeStep((end + 1) as u64));
                self.saved_mins.clear();
                self.saved_mins.extend_from_slice(&self.mins);
                self.saved_maxs.clear();
                self.saved_maxs.extend_from_slice(&self.maxs);
                self.extend_interval(next);
                match self.feasible_witness(k, eps) {
                    Some(w) => {
                        witness = w;
                        end += 1;
                    }
                    None => {
                        // Roll the interval columns back; the orderings are
                        // rebuilt from scratch at the next phase start anyway.
                        self.mins.copy_from_slice(&self.saved_mins);
                        self.maxs.copy_from_slice(&self.saved_maxs);
                        break;
                    }
                }
            }
            let lower_filter = witness
                .iter()
                .map(|id| self.mins[id.index()])
                .min()
                .unwrap_or(0);
            let upper_filter = (0..n)
                .filter(|&i| !self.member[i])
                .map(|i| self.maxs[i])
                .max()
                .unwrap_or(Value::MAX);
            phases.push(Phase {
                start: TimeStep(start as u64),
                end: TimeStep(end as u64),
                output: witness,
                lower_filter,
                upper_filter,
            });
            start = end + 1;
        }
        Ok(PhaseDecomposition { phases, k, eps })
    }

    /// Starts a fresh candidate interval at one row and (re)builds both
    /// orderings with a full sort.
    fn reset_interval(&mut self, row: &[Value]) {
        let n = row.len();
        self.mins.clear();
        self.mins.extend_from_slice(row);
        self.maxs.clear();
        self.maxs.extend_from_slice(row);
        self.member.clear();
        self.member.resize(n, false);
        self.pos_in_by_max.clear();
        self.pos_in_by_max.resize(n, 0);
        self.by_max.clear();
        self.by_max.extend(0..n);
        self.by_min.clear();
        self.by_min.extend(0..n);
        self.resort();
    }

    /// Folds one more row into the interval columns and repairs the orderings.
    fn extend_interval(&mut self, row: &[Value]) {
        for (i, &v) in row.iter().enumerate() {
            if v < self.mins[i] {
                self.mins[i] = v;
            }
            if v > self.maxs[i] {
                self.maxs[i] = v;
            }
        }
        self.resort();
    }

    /// Re-establishes both orderings. The sequences are almost sorted after an
    /// extension (only changed nodes moved), so the run-adaptive stable sort is
    /// near-linear; the full (key, id) comparator keeps the result independent
    /// of the previous order.
    fn resort(&mut self) {
        let maxs = &self.maxs;
        self.by_max
            .sort_by(|&a, &b| maxs[b].cmp(&maxs[a]).then(a.cmp(&b)));
        let mins = &self.mins;
        self.by_min
            .sort_by(|&a, &b| mins[b].cmp(&mins[a]).then(a.cmp(&b)));
        for (pos, &i) in self.by_max.iter().enumerate() {
            self.pos_in_by_max[i] = pos;
        }
    }

    /// Searches for a witness set `F*` with
    /// `MIN_{F*} ≥ (1 − ε) · MAX_{complement}` for the current interval columns.
    /// Returns the witness as an id-sorted node list (and leaves its membership
    /// in `self.member`), or `None` if no k-subset satisfies the condition.
    ///
    /// Enumeration: walk the by-max order. If the complement's largest maximum
    /// is attained by the node at position `p` (0-based) of this order, then
    /// every node before `p` must be in `F*`, and the remaining `k − p` slots
    /// are best filled with the largest interval minima among the rest — i.e.
    /// the first `k − p` entries of the by-min order whose by-max position is
    /// past `p`. Trying every `p ∈ 0..=k` covers all candidate complement
    /// maxima; each try inspects at most `2k + 1` order entries.
    fn feasible_witness(&mut self, k: usize, eps: Option<Epsilon>) -> Option<Vec<NodeId>> {
        let n = self.mins.len();
        debug_assert!(k < n);
        let ge_threshold = |a: Value, b: Value| match eps {
            Some(e) => e.ge_one_minus_eps_times(a, b),
            None => a >= b,
        };
        // Minimum over the interval minima of by_max[..p], accumulated as `p`
        // grows.
        let mut forced_min = Value::MAX;
        for p in 0..=k {
            let threshold = self.maxs[self.by_max[p]];
            let need = k - p;
            // The `need` largest interval minima among nodes past position `p`
            // of the by-max order. At most `p + 1 ≤ k + 1` entries are skipped,
            // so the scan stops after at most `need + k + 1` entries.
            let mut chosen_min = Value::MAX;
            let mut found = 0usize;
            if need > 0 {
                for &i in &self.by_min {
                    if self.pos_in_by_max[i] <= p {
                        continue;
                    }
                    found += 1;
                    if found == need {
                        // by_min is descending, so the last taken is the min.
                        chosen_min = self.mins[i];
                        break;
                    }
                }
                if found < need {
                    forced_min = forced_min.min(self.mins[self.by_max[p]]);
                    continue;
                }
            }
            if ge_threshold(forced_min.min(chosen_min), threshold) {
                self.member.iter_mut().for_each(|m| *m = false);
                for &i in &self.by_max[..p] {
                    self.member[i] = true;
                }
                let mut taken = 0usize;
                for &i in &self.by_min {
                    if taken == need {
                        break;
                    }
                    if self.pos_in_by_max[i] <= p {
                        continue;
                    }
                    self.member[i] = true;
                    taken += 1;
                }
                let member = &self.member;
                return Some((0..n).filter(|&i| member[i]).map(NodeId).collect());
            }
            forced_min = forced_min.min(self.mins[self.by_max[p]]);
        }
        None
    }
}

/// Greedy phase decomposition of `trace` for parameter `k` and offline error
/// `eps` (`None` for the exact problem), using a throwaway [`PhaseSolver`].
/// Callers evaluating many traces should hold a solver and call
/// [`PhaseSolver::decompose`] to reuse its buffers.
///
/// # Errors
///
/// Returns [`ModelError::InvalidK`] if `k` is not in `1..n`.
pub fn decompose(
    trace: &Trace,
    k: usize,
    eps: Option<Epsilon>,
) -> Result<PhaseDecomposition, ModelError> {
    PhaseSolver::new().decompose(trace, k, eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// The pre-solver implementation, kept verbatim as the reference the
    /// buffer-reusing [`PhaseSolver`] is checked against (identical phases,
    /// witnesses and filter boundaries — not just identical counts).
    fn decompose_reference(
        trace: &Trace,
        k: usize,
        eps: Option<Epsilon>,
    ) -> Result<PhaseDecomposition, ModelError> {
        struct Witness {
            set: Vec<NodeId>,
            member: Vec<bool>,
        }
        fn feasible_witness(
            mins: &[Value],
            maxs: &[Value],
            k: usize,
            eps: Option<Epsilon>,
        ) -> Option<Witness> {
            let n = mins.len();
            let ge_threshold = |a: Value, b: Value| match eps {
                Some(e) => e.ge_one_minus_eps_times(a, b),
                None => a >= b,
            };
            let mut by_max: Vec<usize> = (0..n).collect();
            by_max.sort_by(|&a, &b| maxs[b].cmp(&maxs[a]).then(a.cmp(&b)));
            for p in 0..=k {
                let threshold = maxs[by_max[p]];
                let mut forced_min = Value::MAX;
                for &i in &by_max[..p] {
                    forced_min = forced_min.min(mins[i]);
                }
                let mut rest: Vec<usize> = by_max[p + 1..].to_vec();
                rest.sort_by(|&a, &b| mins[b].cmp(&mins[a]).then(a.cmp(&b)));
                if rest.len() < k - p {
                    continue;
                }
                let chosen = &rest[..k - p];
                let chosen_min = chosen.iter().map(|&i| mins[i]).min().unwrap_or(Value::MAX);
                if ge_threshold(forced_min.min(chosen_min), threshold) {
                    let mut member = vec![false; n];
                    for &i in &by_max[..p] {
                        member[i] = true;
                    }
                    for &i in chosen {
                        member[i] = true;
                    }
                    let set = (0..n).filter(|&i| member[i]).map(NodeId).collect();
                    return Some(Witness { set, member });
                }
            }
            None
        }
        let n = trace.n();
        if k == 0 || k >= n {
            return Err(ModelError::InvalidK { k, n });
        }
        let mut phases = Vec::new();
        let mut start = 0usize;
        while start < trace.steps() {
            let row = trace.row(TimeStep(start as u64));
            let mut mins: Vec<Value> = row.to_vec();
            let mut maxs: Vec<Value> = row.to_vec();
            let mut witness = feasible_witness(&mins, &maxs, k, eps).unwrap();
            let mut end = start;
            while end + 1 < trace.steps() {
                let next = trace.row(TimeStep((end + 1) as u64));
                let saved_mins = mins.clone();
                let saved_maxs = maxs.clone();
                for i in 0..n {
                    mins[i] = mins[i].min(next[i]);
                    maxs[i] = maxs[i].max(next[i]);
                }
                match feasible_witness(&mins, &maxs, k, eps) {
                    Some(w) => {
                        witness = w;
                        end += 1;
                    }
                    None => {
                        mins = saved_mins;
                        maxs = saved_maxs;
                        break;
                    }
                }
            }
            let lower_filter = witness
                .set
                .iter()
                .map(|id| mins[id.index()])
                .min()
                .unwrap_or(0);
            let upper_filter = (0..n)
                .filter(|i| !witness.member[*i])
                .map(|i| maxs[i])
                .max()
                .unwrap_or(Value::MAX);
            phases.push(Phase {
                start: TimeStep(start as u64),
                end: TimeStep(end as u64),
                output: witness.set,
                lower_filter,
                upper_filter,
            });
            start = end + 1;
        }
        Ok(PhaseDecomposition { phases, k, eps })
    }

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn constant_trace_is_one_phase() {
        let trace = Trace::from_fn(50, 5, |_, i| (100 - i * 10) as Value);
        let d = decompose(&trace, 2, None).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.phases[0].output, ids(&[0, 1]));
        assert_eq!(d.opt_lower_bound(), 1);
        assert_eq!(d.opt_upper_bound(), 3);
        assert_eq!(d.phases[0].len(), 50);
    }

    #[test]
    fn swap_forces_new_phase_in_exact_problem() {
        // Two nodes swapping leadership force the exact offline algorithm to
        // communicate, but the approximate one (large ε) can keep one output.
        let rows = vec![vec![100, 90], vec![90, 100], vec![100, 90], vec![90, 100]];
        let trace = Trace::new(rows).unwrap();
        let exact = decompose(&trace, 1, None).unwrap();
        assert_eq!(exact.len(), 4);
        let approx = decompose(&trace, 1, Some(Epsilon::HALF)).unwrap();
        assert_eq!(approx.len(), 1);
    }

    #[test]
    fn eps_threshold_controls_phase_boundaries() {
        // Values oscillate by 20 % around 100: ε = 0.5 tolerates it, ε = 0.05 does not.
        let rows = vec![vec![110, 100], vec![90, 110], vec![110, 95], vec![88, 110]];
        let trace = Trace::new(rows).unwrap();
        assert_eq!(decompose(&trace, 1, Some(Epsilon::HALF)).unwrap().len(), 1);
        assert!(
            decompose(&trace, 1, Some(Epsilon::new(1, 20).unwrap()))
                .unwrap()
                .len()
                > 1
        );
    }

    #[test]
    fn phases_tile_the_trace() {
        let trace = Trace::from_fn(37, 4, |t, i| ((t * 13 + i * 7) % 50) as Value);
        let d = decompose(&trace, 2, Some(Epsilon::TENTH)).unwrap();
        assert_eq!(d.phases[0].start, TimeStep(0));
        assert_eq!(d.phases.last().unwrap().end, TimeStep(36));
        for w in d.phases.windows(2) {
            assert_eq!(w[1].start.raw(), w[0].end.raw() + 1);
        }
    }

    #[test]
    fn invalid_k_is_rejected() {
        let trace = Trace::from_fn(3, 3, |_, i| i as Value);
        assert!(matches!(
            decompose(&trace, 0, None),
            Err(ModelError::InvalidK { .. })
        ));
        assert!(matches!(
            decompose(&trace, 3, None),
            Err(ModelError::InvalidK { .. })
        ));
    }

    #[test]
    fn witness_is_valid_output_throughout_phase() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let trace = Trace::from_fn(60, 6, |_, _| rng.gen_range(1..1000));
        let eps = Epsilon::new(1, 4).unwrap();
        let d = decompose(&trace, 3, Some(eps)).unwrap();
        for phase in &d.phases {
            for t in phase.start.raw()..=phase.end.raw() {
                let view = TopKView::new(trace.row(TimeStep(t)), 3, eps);
                let validity = view.validate_output(&phase.output);
                assert!(
                    validity.is_valid(),
                    "phase witness invalid at t={t}: {validity:?}"
                );
            }
        }
    }

    #[test]
    fn witness_filters_are_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let trace = Trace::from_fn(40, 5, |_, _| rng.gen_range(1..500));
        let eps = Epsilon::HALF;
        let d = decompose(&trace, 2, Some(eps)).unwrap();
        for phase in &d.phases {
            // The witness filter boundary must satisfy Observation 2.2.
            assert!(
                eps.ge_one_minus_eps_times(phase.lower_filter, phase.upper_filter),
                "phase filters violate the overlap condition: {phase:?}"
            );
        }
    }

    #[test]
    fn greedy_beats_or_matches_per_step_decomposition() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let trace = Trace::from_fn(80, 4, |_, _| rng.gen_range(1..100));
        let d = decompose(&trace, 2, Some(Epsilon::TENTH)).unwrap();
        assert!(d.len() <= trace.steps());
    }

    #[test]
    fn solver_reuse_across_traces_and_populations() {
        // One solver fed traces of different n and k must match throwaway runs.
        let mut solver = PhaseSolver::new();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for (n, k, steps) in [(6, 2, 30), (3, 1, 12), (10, 4, 25), (6, 5, 18)] {
            let trace = Trace::from_fn(steps, n, |_, _| rng.gen_range(1..300));
            let reused = solver.decompose(&trace, k, Some(Epsilon::TENTH)).unwrap();
            let fresh = decompose(&trace, k, Some(Epsilon::TENTH)).unwrap();
            assert_eq!(reused, fresh, "n={n} k={k}: buffer reuse changed output");
        }
    }

    proptest! {
        /// The exact decomposition never has fewer phases than the approximate one
        /// for the same trace (an exact adversary is weaker, cf. Sect. 5).
        #[test]
        fn exact_has_at_least_as_many_phases(
            seed in 0u64..200, n in 3usize..7, steps in 2usize..30
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let trace = Trace::from_fn(steps, n, |_, _| rng.gen_range(1..200));
            let k = 1 + (seed as usize) % (n - 1);
            let exact = decompose(&trace, k, None).unwrap();
            let approx = decompose(&trace, k, Some(Epsilon::HALF)).unwrap();
            prop_assert!(exact.len() >= approx.len());
        }

        /// Larger ε never increases the number of phases.
        #[test]
        fn monotone_in_eps(seed in 0u64..200, steps in 2usize..25) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let trace = Trace::from_fn(steps, 5, |_, _| rng.gen_range(1..200));
            let tight = decompose(&trace, 2, Some(Epsilon::new(1, 100).unwrap())).unwrap();
            let loose = decompose(&trace, 2, Some(Epsilon::HALF)).unwrap();
            prop_assert!(loose.len() <= tight.len());
        }

        /// Every phase's witness is a valid output at its first time step.
        #[test]
        fn witness_valid_at_phase_start(seed in 0u64..100, steps in 1usize..20) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let trace = Trace::from_fn(steps, 6, |_, _| rng.gen_range(1..50));
            let eps = Epsilon::new(1, 3).unwrap();
            let d = decompose(&trace, 3, Some(eps)).unwrap();
            for phase in &d.phases {
                let view = TopKView::new(trace.row(phase.start), 3, eps);
                prop_assert!(view.validate_output(&phase.output).is_valid());
            }
        }

        /// The buffer-reusing solver reproduces the reference implementation
        /// bit-for-bit: same phase boundaries, same witness sets, same filter
        /// boundaries — for exact and approximate adversaries alike. Values are
        /// drawn from a narrow range so ties (the delicate part of the ordering
        /// maintenance) are frequent.
        #[test]
        fn solver_matches_reference(
            seed in 0u64..300, n in 2usize..9, steps in 1usize..24, tie_range in 2u64..40
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let trace = Trace::from_fn(steps, n, |_, _| rng.gen_range(1..tie_range));
            let k = 1 + (seed as usize) % (n - 1);
            let eps = match seed % 3 {
                0 => None,
                1 => Some(Epsilon::HALF),
                _ => Some(Epsilon::TENTH),
            };
            let fast = PhaseSolver::new().decompose(&trace, k, eps).unwrap();
            let reference = decompose_reference(&trace, k, eps).unwrap();
            prop_assert_eq!(fast, reference);
        }
    }
}
