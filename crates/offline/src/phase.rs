//! Greedy phase decomposition — the engine behind both offline baselines.
//!
//! A *phase* is a maximal interval `[t, t']` during which a filter-based offline
//! algorithm can stay completely silent. By Proposition 2.4 such an algorithm
//! needs only two filters, `F₁ = [ℓ*, ∞)` for its output `F*` and `F₂ = [0, u*]`
//! for the rest, and by (the ε-generalised) Lemma 2.5 staying silent over
//! `[t, t']` is possible iff
//!
//! ```text
//!   ∃ F* ⊆ nodes, |F*| = k :  MIN_{F*}(t, t') ≥ (1 − ε') · MAX_{rest}(t, t')
//! ```
//!
//! (with `ε' = 0` for the exact problem). The condition is closed under
//! shortening the interval, so the decomposition with the fewest phases is found
//! greedily: extend the current phase while some witness set `F*` exists, close
//! it when none does. The number of phases minus one lower-bounds the number of
//! filter updates *any* filter-based offline algorithm needs, and `k + 1` messages
//! per phase (k unicast upper filters plus one broadcast) suffice to realise the
//! decomposition — these are the two bounds [`crate::OfflineCost`] reports.

use serde::{Deserialize, Serialize};
use topk_gen::Trace;
use topk_model::prelude::*;
use topk_model::ModelError;

/// One silent interval of the offline algorithm together with a witness output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// First time step of the phase (inclusive).
    pub start: TimeStep,
    /// Last time step of the phase (inclusive).
    pub end: TimeStep,
    /// A witness output set `F*` that is valid throughout the phase.
    pub output: Vec<NodeId>,
    /// The filter boundary the witness can use: `F₁ = [lower_filter, ∞)`.
    pub lower_filter: Value,
    /// The filter boundary the witness can use: `F₂ = [0, upper_filter]`.
    pub upper_filter: Value,
}

impl Phase {
    /// Number of time steps covered by the phase.
    pub fn len(&self) -> u64 {
        self.end.raw() - self.start.raw() + 1
    }

    /// Whether the phase is empty (never true for phases produced by the solver).
    pub fn is_empty(&self) -> bool {
        self.end < self.start
    }
}

/// Result of decomposing a trace into silent phases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseDecomposition {
    /// The phases in chronological order; they tile the trace exactly.
    pub phases: Vec<Phase>,
    /// `k` used for the decomposition.
    pub k: usize,
    /// The offline algorithm's error (`None` = exact problem).
    pub eps: Option<Epsilon>,
}

impl PhaseDecomposition {
    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether there are no phases (only possible for the empty trace, which the
    /// solver rejects).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Lower bound on the number of messages any filter-based offline algorithm
    /// needs on this trace: one initial filter assignment plus one update per
    /// additional phase.
    pub fn opt_lower_bound(&self) -> u64 {
        self.phases.len() as u64
    }

    /// Cost of the explicit two-filter offline strategy from the proof of
    /// Theorem 5.1: `k` unicast filters plus one broadcast per phase.
    pub fn opt_upper_bound(&self) -> u64 {
        (self.phases.len() as u64) * (self.k as u64 + 1)
    }
}

/// Greedy phase decomposition of `trace` for parameter `k` and offline error
/// `eps` (`None` for the exact problem).
///
/// # Errors
///
/// Returns [`ModelError::InvalidK`] if `k` is not in `1..n`.
pub fn decompose(
    trace: &Trace,
    k: usize,
    eps: Option<Epsilon>,
) -> Result<PhaseDecomposition, ModelError> {
    let n = trace.n();
    if k == 0 || k >= n {
        return Err(ModelError::InvalidK { k, n });
    }
    let mut phases = Vec::new();
    let mut start = 0usize;
    while start < trace.steps() {
        // Interval minima / maxima per node, over [start, current].
        let row = trace.row(TimeStep(start as u64));
        let mut mins: Vec<Value> = row.to_vec();
        let mut maxs: Vec<Value> = row.to_vec();
        let mut witness = feasible_witness(&mins, &maxs, k, eps)
            .expect("a single time step always admits its exact top-k as witness");
        let mut end = start;
        while end + 1 < trace.steps() {
            let next = trace.row(TimeStep((end + 1) as u64));
            let saved_mins = mins.clone();
            let saved_maxs = maxs.clone();
            for i in 0..n {
                mins[i] = mins[i].min(next[i]);
                maxs[i] = maxs[i].max(next[i]);
            }
            match feasible_witness(&mins, &maxs, k, eps) {
                Some(w) => {
                    witness = w;
                    end += 1;
                }
                None => {
                    mins = saved_mins;
                    maxs = saved_maxs;
                    break;
                }
            }
        }
        let lower_filter = witness
            .set
            .iter()
            .map(|id| mins[id.index()])
            .min()
            .unwrap_or(0);
        let upper_filter = (0..n)
            .filter(|i| !witness.member[*i])
            .map(|i| maxs[i])
            .max()
            .unwrap_or(Value::MAX);
        phases.push(Phase {
            start: TimeStep(start as u64),
            end: TimeStep(end as u64),
            output: witness.set,
            lower_filter,
            upper_filter,
        });
        start = end + 1;
    }
    Ok(PhaseDecomposition { phases, k, eps })
}

struct Witness {
    set: Vec<NodeId>,
    member: Vec<bool>,
}

/// Searches for a witness set `F*` with
/// `MIN_{F*} ≥ (1 − ε) · MAX_{complement}` given per-node interval minima and
/// maxima. Returns `None` if no k-subset satisfies the condition.
///
/// Enumeration: sort nodes by interval maximum (descending). If the complement's
/// largest maximum is attained by the node at position `p` (0-based) of this
/// order, then every node before `p` must be in `F*`, and the remaining slots are
/// best filled with the nodes of largest interval minimum among the rest. Trying
/// every `p ∈ 0..=k` covers all candidate complement maxima.
fn feasible_witness(
    mins: &[Value],
    maxs: &[Value],
    k: usize,
    eps: Option<Epsilon>,
) -> Option<Witness> {
    let n = mins.len();
    debug_assert!(k < n);
    let ge_threshold = |a: Value, b: Value| match eps {
        Some(e) => e.ge_one_minus_eps_times(a, b),
        None => a >= b,
    };
    // Node indices sorted by interval maximum, descending (ties: smaller id first
    // to mirror the tie-breaking used everywhere else).
    let mut by_max: Vec<usize> = (0..n).collect();
    by_max.sort_by(|&a, &b| maxs[b].cmp(&maxs[a]).then(a.cmp(&b)));

    for p in 0..=k {
        // Nodes by_max[0..p] are forced into F*; by_max[p] is the first excluded
        // node and determines the complement's maximum.
        let threshold = maxs[by_max[p]];
        let mut forced_min = Value::MAX;
        for &i in &by_max[..p] {
            forced_min = forced_min.min(mins[i]);
        }
        // Fill the remaining k - p slots with the largest interval minima among
        // the nodes after position p.
        let mut rest: Vec<usize> = by_max[p + 1..].to_vec();
        rest.sort_by(|&a, &b| mins[b].cmp(&mins[a]).then(a.cmp(&b)));
        if rest.len() < k - p {
            continue;
        }
        let chosen = &rest[..k - p];
        let chosen_min = chosen.iter().map(|&i| mins[i]).min().unwrap_or(Value::MAX);
        let overall_min = forced_min.min(chosen_min);
        if ge_threshold(overall_min, threshold) {
            let mut member = vec![false; n];
            for &i in &by_max[..p] {
                member[i] = true;
            }
            for &i in chosen {
                member[i] = true;
            }
            let set = (0..n).filter(|&i| member[i]).map(NodeId).collect();
            return Some(Witness { set, member });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn constant_trace_is_one_phase() {
        let trace = Trace::from_fn(50, 5, |_, i| (100 - i * 10) as Value);
        let d = decompose(&trace, 2, None).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.phases[0].output, ids(&[0, 1]));
        assert_eq!(d.opt_lower_bound(), 1);
        assert_eq!(d.opt_upper_bound(), 3);
        assert_eq!(d.phases[0].len(), 50);
    }

    #[test]
    fn swap_forces_new_phase_in_exact_problem() {
        // Two nodes swapping leadership force the exact offline algorithm to
        // communicate, but the approximate one (large ε) can keep one output.
        let rows = vec![vec![100, 90], vec![90, 100], vec![100, 90], vec![90, 100]];
        let trace = Trace::new(rows).unwrap();
        let exact = decompose(&trace, 1, None).unwrap();
        assert_eq!(exact.len(), 4);
        let approx = decompose(&trace, 1, Some(Epsilon::HALF)).unwrap();
        assert_eq!(approx.len(), 1);
    }

    #[test]
    fn eps_threshold_controls_phase_boundaries() {
        // Values oscillate by 20 % around 100: ε = 0.5 tolerates it, ε = 0.05 does not.
        let rows = vec![vec![110, 100], vec![90, 110], vec![110, 95], vec![88, 110]];
        let trace = Trace::new(rows).unwrap();
        assert_eq!(decompose(&trace, 1, Some(Epsilon::HALF)).unwrap().len(), 1);
        assert!(
            decompose(&trace, 1, Some(Epsilon::new(1, 20).unwrap()))
                .unwrap()
                .len()
                > 1
        );
    }

    #[test]
    fn phases_tile_the_trace() {
        let trace = Trace::from_fn(37, 4, |t, i| ((t * 13 + i * 7) % 50) as Value);
        let d = decompose(&trace, 2, Some(Epsilon::TENTH)).unwrap();
        assert_eq!(d.phases[0].start, TimeStep(0));
        assert_eq!(d.phases.last().unwrap().end, TimeStep(36));
        for w in d.phases.windows(2) {
            assert_eq!(w[1].start.raw(), w[0].end.raw() + 1);
        }
    }

    #[test]
    fn invalid_k_is_rejected() {
        let trace = Trace::from_fn(3, 3, |_, i| i as Value);
        assert!(matches!(
            decompose(&trace, 0, None),
            Err(ModelError::InvalidK { .. })
        ));
        assert!(matches!(
            decompose(&trace, 3, None),
            Err(ModelError::InvalidK { .. })
        ));
    }

    #[test]
    fn witness_is_valid_output_throughout_phase() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let trace = Trace::from_fn(60, 6, |_, _| rng.gen_range(1..1000));
        let eps = Epsilon::new(1, 4).unwrap();
        let d = decompose(&trace, 3, Some(eps)).unwrap();
        for phase in &d.phases {
            for t in phase.start.raw()..=phase.end.raw() {
                let view = TopKView::new(trace.row(TimeStep(t)), 3, eps);
                let validity = view.validate_output(&phase.output);
                assert!(
                    validity.is_valid(),
                    "phase witness invalid at t={t}: {validity:?}"
                );
            }
        }
    }

    #[test]
    fn witness_filters_are_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let trace = Trace::from_fn(40, 5, |_, _| rng.gen_range(1..500));
        let eps = Epsilon::HALF;
        let d = decompose(&trace, 2, Some(eps)).unwrap();
        for phase in &d.phases {
            // The witness filter boundary must satisfy Observation 2.2.
            assert!(
                eps.ge_one_minus_eps_times(phase.lower_filter, phase.upper_filter),
                "phase filters violate the overlap condition: {phase:?}"
            );
        }
    }

    #[test]
    fn greedy_beats_or_matches_per_step_decomposition() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let trace = Trace::from_fn(80, 4, |_, _| rng.gen_range(1..100));
        let d = decompose(&trace, 2, Some(Epsilon::TENTH)).unwrap();
        assert!(d.len() <= trace.steps());
    }

    proptest! {
        /// The exact decomposition never has fewer phases than the approximate one
        /// for the same trace (an exact adversary is weaker, cf. Sect. 5).
        #[test]
        fn exact_has_at_least_as_many_phases(
            seed in 0u64..200, n in 3usize..7, steps in 2usize..30
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let trace = Trace::from_fn(steps, n, |_, _| rng.gen_range(1..200));
            let k = 1 + (seed as usize) % (n - 1);
            let exact = decompose(&trace, k, None).unwrap();
            let approx = decompose(&trace, k, Some(Epsilon::HALF)).unwrap();
            prop_assert!(exact.len() >= approx.len());
        }

        /// Larger ε never increases the number of phases.
        #[test]
        fn monotone_in_eps(seed in 0u64..200, steps in 2usize..25) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let trace = Trace::from_fn(steps, 5, |_, _| rng.gen_range(1..200));
            let tight = decompose(&trace, 2, Some(Epsilon::new(1, 100).unwrap())).unwrap();
            let loose = decompose(&trace, 2, Some(Epsilon::HALF)).unwrap();
            prop_assert!(loose.len() <= tight.len());
        }

        /// Every phase's witness is a valid output at its first time step.
        #[test]
        fn witness_valid_at_phase_start(seed in 0u64..100, steps in 1usize..20) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let trace = Trace::from_fn(steps, 6, |_, _| rng.gen_range(1..50));
            let eps = Epsilon::new(1, 3).unwrap();
            let d = decompose(&trace, 3, Some(eps)).unwrap();
            for phase in &d.phases {
                let view = TopKView::new(trace.row(phase.start), 3, eps);
                prop_assert!(view.validate_output(&phase.output).is_valid());
            }
        }
    }
}
