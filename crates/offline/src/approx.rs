//! Offline baseline for ε-Top-k-Position Monitoring.
//!
//! This is the *approximate adversary* of Sect. 5 of the paper: an offline
//! filter-based algorithm that only has to maintain a valid ε'-approximate
//! output. It is strictly stronger (cheaper) than the exact adversary — the gap
//! is exactly what the lower bound of Theorem 5.1 exploits. Instantiating the
//! error with `ε' = ε/2` gives the weaker adversary of Corollary 5.9.

use crate::cost::OfflineCost;
use crate::phase::{decompose, PhaseDecomposition, PhaseSolver};
use topk_gen::Trace;
use topk_model::prelude::*;
use topk_model::ModelError;

/// Optimal filter-based offline algorithm for the ε'-approximate problem.
#[derive(Debug, Clone, Copy)]
pub struct ApproxOfflineOpt {
    k: usize,
    eps: Epsilon,
}

impl ApproxOfflineOpt {
    /// Creates the baseline for parameter `k` and offline error `eps`.
    pub fn new(k: usize, eps: Epsilon) -> ApproxOfflineOpt {
        ApproxOfflineOpt { k, eps }
    }

    /// Creates the `ε/2` adversary used by Corollary 5.9, given the *online*
    /// algorithm's error `eps`.
    pub fn half_of(k: usize, eps: Epsilon) -> ApproxOfflineOpt {
        ApproxOfflineOpt {
            k,
            eps: eps.halved(),
        }
    }

    /// The monitored `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The offline algorithm's error `ε'`.
    pub fn eps(&self) -> Epsilon {
        self.eps
    }

    /// Computes the optimal phase decomposition of `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidK`] if `k ∉ 1..n`.
    pub fn decompose(&self, trace: &Trace) -> Result<PhaseDecomposition, ModelError> {
        decompose(trace, self.k, Some(self.eps))
    }

    /// Computes the message-count bounds for OPT on `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidK`] if `k ∉ 1..n`.
    pub fn cost(&self, trace: &Trace) -> Result<OfflineCost, ModelError> {
        Ok(OfflineCost::from_decomposition(&self.decompose(trace)?))
    }

    /// Like [`ApproxOfflineOpt::cost`], but reuses the buffers of an existing
    /// [`PhaseSolver`] — the entry point for batch evaluations (the campaign
    /// grid runs thousands of OPT computations per report).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidK`] if `k ∉ 1..n`.
    pub fn cost_with(
        &self,
        solver: &mut PhaseSolver,
        trace: &Trace,
    ) -> Result<OfflineCost, ModelError> {
        Ok(OfflineCost::from_decomposition(&solver.decompose(
            trace,
            self.k,
            Some(self.eps),
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_gen::{NoiseOscillationWorkload, Workload};

    #[test]
    fn approximate_adversary_is_cheaper_on_oscillation() {
        // σ nodes oscillate inside the ε-neighbourhood: the approximate OPT keeps
        // one phase, the exact OPT needs many.
        let eps = Epsilon::TENTH;
        let mut w = NoiseOscillationWorkload::new(12, 2, 6, 100_000, eps, 3);
        let trace = w.generate(80);
        let k = 4;
        let approx = ApproxOfflineOpt::new(k, eps).cost(&trace).unwrap();
        let exact = crate::ExactOfflineOpt::new(k).cost(&trace).unwrap();
        assert_eq!(approx.phases, 1, "oscillation fits into one ε-phase");
        assert!(
            exact.phases > 10,
            "exact OPT should pay on almost every step, got {}",
            exact.phases
        );
    }

    #[test]
    fn half_of_uses_halved_epsilon() {
        let a = ApproxOfflineOpt::half_of(3, Epsilon::HALF);
        assert_eq!(a.eps(), Epsilon::new(1, 4).unwrap());
        assert_eq!(a.k(), 3);
    }

    #[test]
    fn smaller_offline_error_never_reduces_phases() {
        let eps = Epsilon::new(1, 5).unwrap();
        let mut w = NoiseOscillationWorkload::new(10, 1, 5, 10_000, eps, 7);
        let trace = w.generate(60);
        let full = ApproxOfflineOpt::new(3, eps).cost(&trace).unwrap();
        let half = ApproxOfflineOpt::half_of(3, eps).cost(&trace).unwrap();
        assert!(half.phases >= full.phases);
    }

    #[test]
    fn invalid_k_propagates() {
        let trace = Trace::from_fn(2, 3, |_, i| i as Value);
        assert!(ApproxOfflineOpt::new(0, Epsilon::HALF)
            .cost(&trace)
            .is_err());
    }
}
