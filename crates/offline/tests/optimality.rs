//! The greedy phase decomposition is *optimal*: on brute-forceable instances
//! it finds the minimum possible number of phases.
//!
//! The greedy argument (extend the current phase while any witness set
//! exists; feasibility is closed under shortening an interval) implies the
//! decomposition of [`ExactOfflineOpt`]/[`ApproxOfflineOpt`] minimises the
//! number of phases over *all* ways to tile the trace with silent intervals.
//! This battery re-derives that minimum with an independent oracle — an
//! exhaustive feasibility check over all `C(n, k)` witness sets per interval,
//! fed into an interval-partition dynamic program — and asserts equality on
//! random instances with `n ≤ 6`, `T ≤ 12`.

use proptest::prelude::*;
use topk_gen::Trace;
use topk_model::prelude::*;
use topk_offline::{ApproxOfflineOpt, ExactOfflineOpt};

/// Oracle feasibility of one phase: does *any* k-subset `F*` satisfy
/// `MIN_{F*}(interval) ≥ (1 − ε) · MAX_{rest}(interval)` (with `ε = 0` for the
/// exact problem)? Enumerated over every subset — no shortcuts shared with the
/// production solver.
fn interval_feasible(trace: &Trace, a: usize, b: usize, k: usize, eps: Option<Epsilon>) -> bool {
    let n = trace.n();
    let mut mins = trace.row(TimeStep(a as u64)).to_vec();
    let mut maxs = mins.clone();
    for t in a..=b {
        for (i, &v) in trace.row(TimeStep(t as u64)).iter().enumerate() {
            mins[i] = mins[i].min(v);
            maxs[i] = maxs[i].max(v);
        }
    }
    let ge_threshold = |x: Value, y: Value| match eps {
        Some(e) => e.ge_one_minus_eps_times(x, y),
        None => x >= y,
    };
    // Every bitmask with exactly k ones is a candidate witness.
    (0u32..1 << n)
        .filter(|m| m.count_ones() as usize == k)
        .any(|mask| {
            let min_inside = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| mins[i])
                .min()
                .unwrap_or(Value::MAX);
            let max_outside = (0..n)
                .filter(|i| mask & (1 << i) == 0)
                .map(|i| maxs[i])
                .max()
                .unwrap_or(0);
            ge_threshold(min_inside, max_outside)
        })
}

/// Minimum number of phases over all tilings of the trace, by dynamic
/// programming over the exhaustive interval feasibility.
fn min_phases_exhaustive(trace: &Trace, k: usize, eps: Option<Epsilon>) -> usize {
    let steps = trace.steps();
    // best[t] = minimal phases covering steps 0..t (best[0] = 0).
    let mut best = vec![usize::MAX; steps + 1];
    best[0] = 0;
    for end in 0..steps {
        for start in 0..=end {
            if best[start] != usize::MAX && interval_feasible(trace, start, end, k, eps) {
                best[end + 1] = best[end + 1].min(best[start] + 1);
            }
        }
    }
    best[steps]
}

fn random_trace(seed: u64, n: usize, steps: usize, spread: u64) -> Trace {
    // A small multiplicative spread produces traces where phases actually
    // break (values cross each other); a large one produces stable leaders.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    Trace::from_fn(steps, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        1 + (state >> 33) % spread
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `ExactOfflineOpt` finds the minimum number of phases.
    #[test]
    fn exact_greedy_is_minimal(
        seed in 0u64..100_000,
        n in 2usize..7,
        steps in 1usize..13,
        spread_idx in 0usize..3,
    ) {
        let k = 1 + (seed as usize) % (n - 1).max(1);
        // A small spread produces traces where phases actually break; a large
        // one produces stable leaders — cover both regimes.
        let spread = [8u64, 50, 1000][spread_idx];
        let trace = random_trace(seed, n, steps, spread);
        let greedy = ExactOfflineOpt::new(k).decompose(&trace).unwrap();
        let optimal = min_phases_exhaustive(&trace, k, None);
        prop_assert_eq!(
            greedy.len(),
            optimal,
            "greedy exact decomposition is not minimal on {:?}",
            trace
        );
    }

    /// `ApproxOfflineOpt` finds the minimum number of phases for its ε.
    #[test]
    fn approx_greedy_is_minimal(
        seed in 0u64..100_000,
        n in 2usize..7,
        steps in 1usize..13,
        inv_eps in 2u32..12,
    ) {
        let k = 1 + (seed as usize) % (n - 1).max(1);
        let eps = Epsilon::new(1, inv_eps).unwrap();
        let trace = random_trace(seed, n, steps, 30);
        let greedy = ApproxOfflineOpt::new(k, eps).decompose(&trace).unwrap();
        let optimal = min_phases_exhaustive(&trace, k, Some(eps));
        prop_assert_eq!(
            greedy.len(),
            optimal,
            "greedy ε-approximate decomposition is not minimal on {:?}",
            trace
        );
    }
}

/// A handcrafted worst case for greedy-style algorithms: the interval
/// structure rewards *not* extending the first phase as far as possible in
/// many partition problems — but phase feasibility is closed under
/// shortening, so the greedy tiling stays optimal. Pin one such instance.
#[test]
fn greedy_survives_a_tempting_early_cut() {
    // Leadership: node 0 leads, then ties loosely, then node 1 leads clearly.
    let rows = vec![
        vec![100, 10],
        vec![100, 10],
        vec![60, 50],
        vec![10, 100],
        vec![10, 100],
    ];
    let trace = Trace::new(rows).unwrap();
    let greedy = ExactOfflineOpt::new(1).decompose(&trace).unwrap();
    assert_eq!(greedy.len(), min_phases_exhaustive(&trace, 1, None));
}
